package storage

import (
	"strings"
	"testing"

	"github.com/xqdb/xqdb/internal/xdm"
	"github.com/xqdb/xqdb/internal/xmlindex"
	"github.com/xqdb/xqdb/internal/xmlparse"
	"github.com/xqdb/xqdb/internal/xmlschema"
)

func ordersTable(t *testing.T) (*Catalog, *Table) {
	t.Helper()
	c := NewCatalog()
	tab, err := c.CreateTable("orders", []Column{
		{Name: "ordid", Type: Integer},
		{Name: "orddoc", Type: XML},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, tab
}

func insertOrder(t *testing.T, tab *Table, id int64, doc string) uint32 {
	t.Helper()
	rid, err := tab.Insert([]Cell{
		{V: xdm.NewInteger(id)},
		{V: xdm.NewString(doc)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return rid
}

func TestInsertParsesXML(t *testing.T) {
	_, tab := ordersTable(t)
	id := insertOrder(t, tab, 1, `<order><lineitem price="5"/></order>`)
	row, ok := tab.RowByID(id)
	if !ok || row.Cells[1].Doc == nil {
		t.Fatal("XML cell not parsed")
	}
	if row.Cells[1].Doc.Kind != xdm.DocumentNode {
		t.Error("XML cell should hold a document node")
	}
	if _, err := tab.Insert([]Cell{{V: xdm.NewInteger(2)}, {V: xdm.NewString("<broken")}}); err == nil {
		t.Error("malformed XML must be rejected")
	}
}

func TestTypeCoercionAndVarcharLimit(t *testing.T) {
	c := NewCatalog()
	tab, err := c.CreateTable("products", []Column{
		{Name: "id", Type: Varchar, Size: 13},
		{Name: "name", Type: Varchar, Size: 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Insert([]Cell{{V: xdm.NewString("0123456789")}, {V: xdm.NewString("ok")}}); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Insert([]Cell{{V: xdm.NewString("01234567890123")}, {V: xdm.NewString("too long id")}}); err == nil {
		t.Error("varchar(13) overflow must be rejected")
	}
	tab2, _ := c.CreateTable("nums", []Column{{Name: "x", Type: Integer}})
	if _, err := tab2.Insert([]Cell{{V: xdm.NewString("12")}}); err != nil {
		t.Errorf("castable string into integer column: %v", err)
	}
	if _, err := tab2.Insert([]Cell{{V: xdm.NewString("abc")}}); err == nil {
		t.Error("non-numeric string into integer column must fail")
	}
}

func TestXMLIndexMaintenance(t *testing.T) {
	_, tab := ordersTable(t)
	insertOrder(t, tab, 1, `<order><lineitem price="150"/></order>`)
	xi, err := tab.CreateXMLIndex("li_price", "orddoc", "//lineitem/@price", xmlindex.Double)
	if err != nil {
		t.Fatal(err)
	}
	if xi.Index.Stats().Entries != 1 {
		t.Fatal("index not built over existing rows")
	}
	id2 := insertOrder(t, tab, 2, `<order><lineitem price="80"/></order>`)
	if xi.Index.Stats().Entries != 2 {
		t.Fatal("insert did not maintain index")
	}
	if err := tab.Delete(id2); err != nil {
		t.Fatal(err)
	}
	if xi.Index.Stats().Entries != 1 {
		t.Fatal("delete did not maintain index")
	}
	if tab.Len() != 1 {
		t.Fatalf("len = %d", tab.Len())
	}
}

func TestListTypeRejectsInsert(t *testing.T) {
	_, tab := ordersTable(t)
	if _, err := tab.CreateXMLIndex("sc", "orddoc", "//scores", xmlindex.Double); err != nil {
		t.Fatal(err)
	}
	doc, _ := xmlparse.Parse(`<order><scores>1 2</scores></order>`)
	if err := xmlschema.New("v").DeclareList("scores", xdm.Double).Validate(doc); err != nil {
		t.Fatal(err)
	}
	_, err := tab.Insert([]Cell{{V: xdm.NewInteger(1)}, {Doc: doc}})
	if err == nil || !strings.Contains(err.Error(), "list type") {
		t.Fatalf("err = %v", err)
	}
	if tab.Len() != 0 {
		t.Error("rejected insert must not leave a row")
	}
}

func TestRelIndexLookup(t *testing.T) {
	c := NewCatalog()
	tab, _ := c.CreateTable("products", []Column{
		{Name: "id", Type: Varchar, Size: 13},
		{Name: "name", Type: Varchar, Size: 32},
	})
	ri, err := tab.CreateRelIndex("p_id", "id")
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := tab.Insert([]Cell{{V: xdm.NewString("17")}, {V: xdm.NewString("widget")}})
	tab.Insert([]Cell{{V: xdm.NewString("18")}, {V: xdm.NewString("gadget")}})
	ids, err := ri.Lookup(xdm.NewString("17"))
	if err != nil || len(ids) != 1 || ids[0] != r1 {
		t.Fatalf("lookup = %v %v", ids, err)
	}
	// SQL semantics: trailing blanks insignificant.
	ids, err = ri.Lookup(xdm.NewString("17  "))
	if err != nil || len(ids) != 1 {
		t.Fatalf("padded lookup = %v %v", ids, err)
	}
	ids, _ = ri.Lookup(xdm.NewString("99"))
	if len(ids) != 0 {
		t.Fatal("missing key should be empty")
	}
}

func TestRelIndexOnXMLColumnRejected(t *testing.T) {
	_, tab := ordersTable(t)
	if _, err := tab.CreateRelIndex("bad", "orddoc"); err == nil {
		t.Error("relational index on XML column must be rejected")
	}
}

func TestCatalogBasics(t *testing.T) {
	c, _ := ordersTable(t)
	if _, err := c.CreateTable("ORDERS", nil); err == nil {
		t.Error("duplicate table (case-insensitive) must fail")
	}
	tab, err := c.Table("OrDeRs")
	if err != nil || tab.Name != "orders" {
		t.Fatalf("case-insensitive lookup: %v %v", tab, err)
	}
	if err := c.DropTable("orders"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Table("orders"); err == nil {
		t.Error("dropped table still resolvable")
	}
	if err := c.DropTable("orders"); err == nil {
		t.Error("double drop must fail")
	}
}

func TestNullCells(t *testing.T) {
	_, tab := ordersTable(t)
	id, err := tab.Insert([]Cell{{V: xdm.NewInteger(1)}, {Null: true}})
	if err != nil {
		t.Fatal(err)
	}
	row, _ := tab.RowByID(id)
	if !row.Cells[1].Null {
		t.Error("null lost")
	}
	// Null XML cells do not touch indexes.
	xi, _ := tab.CreateXMLIndex("ix", "orddoc", "//x", xmlindex.Varchar)
	if xi.Index.Stats().Entries != 0 {
		t.Error("null cell produced index entries")
	}
}

func TestDuplicateIndexName(t *testing.T) {
	_, tab := ordersTable(t)
	if _, err := tab.CreateXMLIndex("a", "orddoc", "//x", xmlindex.Varchar); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.CreateXMLIndex("A", "orddoc", "//y", xmlindex.Varchar); err == nil {
		t.Error("duplicate index name must fail")
	}
}
