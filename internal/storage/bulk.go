package storage

import (
	"fmt"

	"github.com/xqdb/xqdb/internal/guard"
	"github.com/xqdb/xqdb/internal/synopsis"
	"github.com/xqdb/xqdb/internal/xmlindex"
)

// ReserveIDs reserves n consecutive row ids and returns the first. The
// ingestion pipeline assigns document ids before parsing — index keys
// embed the docID, so extraction cannot start without one — and reserving
// the whole range up front keeps concurrent Inserts from colliding with
// in-flight bulk loads. Ids of a load that later fails are simply never
// used; row ids may have gaps.
func (t *Table) ReserveIDs(n int) uint32 {
	t.mu.Lock()
	defer t.mu.Unlock()
	id := t.nextID
	t.nextID += uint32(n)
	return id
}

// BulkAppend appends pre-assigned rows and commits staged XML-index runs
// in one atomic step: either every row lands with every index updated, or
// the table and its indexes are untouched. runs maps an index to the
// sorted key runs its extractors produced (see xmlindex.Extractor); an
// index of this table absent from runs — created by DDL after extraction
// started — is maintained per row, exactly as Insert would. check, when
// non-nil, is consulted periodically through the index builds and row
// walk so a guard can abort long appends.
//
// syn maps a column index to the synopsis batches the load's workers
// accumulated for that column (see synopsis.Batch); XML columns absent
// from the map fall back to per-document AddDoc during commit. Synopsis
// maintenance is infallible and happens in phase B only, so a failed
// load leaves the summaries untouched.
//
// Rows must carry ids from ReserveIDs and cells shaped for this table;
// appended rows take the order given, after any rows concurrent Inserts
// committed first.
func (t *Table) BulkAppend(rows []Row, runs map[*xmlindex.Index][][][]byte, syn map[int][]*synopsis.Batch, check func(done int) error) error {
	if err := guard.Fault("storage.bulkappend:" + t.Name); err != nil {
		return fmt.Errorf("bulk append into %s: %w", t.Name, err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()

	// Phase A: everything that can fail runs before anything becomes
	// visible. Cell coercion first, then the staged index builds —
	// PrepareBulk only reads the live trees.
	//xqvet:unbounded-ok bounded by the load's corpus size; check below threads the guard
	for ri := range rows {
		if check != nil {
			if err := check(ri); err != nil {
				return fmt.Errorf("bulk append into %s: %w", t.Name, err)
			}
		}
		row := &rows[ri]
		if len(row.Cells) != len(t.Columns) {
			return fmt.Errorf("table %s: %d values for %d columns", t.Name, len(row.Cells), len(t.Columns))
		}
		if _, dup := t.byID[row.ID]; dup {
			return fmt.Errorf("table %s: bulk append reuses row id %d", t.Name, row.ID)
		}
		for i := range row.Cells {
			if err := t.coerceCell(&row.Cells[i], i); err != nil {
				return fmt.Errorf("bulk append into %s: %w", t.Name, err)
			}
		}
	}
	type stagedBuild struct {
		ix *xmlindex.Index
		bb *xmlindex.BulkBuild
	}
	var staged []stagedBuild
	var perRow []*XMLIndex
	for _, xi := range t.xmlIndexes {
		r, ok := runs[xi.Index]
		if !ok {
			perRow = append(perRow, xi)
			continue
		}
		bb, err := xi.Index.PrepareBulk(check, r...)
		if err != nil {
			return fmt.Errorf("bulk append into %s: index %s: %w", t.Name, xi.Name, err)
		}
		staged = append(staged, stagedBuild{xi.Index, bb})
	}

	// Mid-load-DDL indexes get per-row maintenance. These mutate the
	// index as they go, so an error unwinds what was already inserted.
	type rowInsert struct {
		xi  *XMLIndex
		ci  int
		row *Row
	}
	var inserted []rowInsert
	undo := func() {
		for _, d := range inserted {
			d.xi.Index.DeleteDoc(d.row.ID, d.row.Cells[d.ci].Doc)
		}
	}
	for _, xi := range perRow {
		ci, _ := t.ColumnIndex(xi.Column)
		//xqvet:unbounded-ok bounded by the load's corpus size; check below threads the guard
		for ri := range rows {
			if check != nil {
				if err := check(ri); err != nil {
					undo()
					return fmt.Errorf("bulk append into %s: %w", t.Name, err)
				}
			}
			cell := rows[ri].Cells[ci]
			if cell.Null || cell.Doc == nil {
				continue
			}
			if err := xi.Index.InsertDoc(rows[ri].ID, cell.Doc); err != nil {
				undo()
				return fmt.Errorf("bulk append into %s: %w", t.Name, err)
			}
			inserted = append(inserted, rowInsert{xi, ci, &rows[ri]})
		}
	}

	// Phase B: infallible. Swap the staged trees in, then land the rows.
	for _, s := range staged {
		s.ix.CommitBulk(s.bb)
	}
	//xqvet:unbounded-ok phase B must run to completion; aborting here would leave indexes ahead of rows
	for ri := range rows {
		t.byID[rows[ri].ID] = len(t.rows)
		t.rows = append(t.rows, rows[ri])
		for _, rel := range t.relIndexes {
			rel.insert(rows[ri])
		}
		for ci := range rows[ri].Cells {
			cell := rows[ri].Cells[ci]
			if !cell.Null && cell.Doc != nil && cell.Doc.TypeAnn.Valid {
				t.bumpAnnotated(ci, 1)
			}
		}
	}
	pathSetChanged := false
	for ci := range t.Columns {
		s := t.syn(ci)
		if s == nil {
			continue
		}
		if batches, ok := syn[ci]; ok {
			for _, b := range batches {
				if s.Merge(b) {
					pathSetChanged = true
				}
			}
			continue
		}
		//xqvet:unbounded-ok phase B must run to completion; aborting here would leave rows ahead of synopses
		for ri := range rows {
			cell := rows[ri].Cells[ci]
			if cell.Null || cell.Doc == nil {
				continue
			}
			if s.AddDoc(cell.Doc) {
				pathSetChanged = true
			}
		}
	}
	if pathSetChanged {
		t.bumpVersion()
	}
	return nil
}
