package storage

import "math"

// floatBits maps a float64 to a uint64 whose unsigned order matches the
// float's numeric order (same trick as xmlindex's key encoding).
func floatBits(f float64) uint64 {
	bits := math.Float64bits(f)
	if bits&(1<<63) != 0 {
		return ^bits
	}
	return bits | 1<<63
}
