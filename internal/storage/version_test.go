package storage

import (
	"fmt"
	"testing"

	"github.com/xqdb/xqdb/internal/xmlindex"
)

// The plan cache keys its staleness check on Catalog.Version: every DDL
// statement must bump it, and plain data changes must not (cached plans
// hold live table and index objects, so data flows through unchanged) —
// except when an insert or delete changes a column's synopsis path set,
// which invalidates cached skip decisions and so must bump.
func TestCatalogVersionBumpsOnDDLOnly(t *testing.T) {
	c := NewCatalog()
	v := c.Version()
	step := func(what string, want bool) {
		t.Helper()
		now := c.Version()
		if bumped := now != v; bumped != want {
			t.Fatalf("%s: version bump = %v, want %v (version %d -> %d)", what, bumped, want, v, now)
		}
		v = now
	}

	tab, err := c.CreateTable("orders", []Column{
		{Name: "ordid", Type: Integer},
		{Name: "orddoc", Type: XML},
	})
	if err != nil {
		t.Fatal(err)
	}
	step("CreateTable", true)

	id := insertOrder(t, tab, 1, `<order><lineitem price="150"/></order>`)
	step("Insert with new paths", true)

	id2 := insertOrder(t, tab, 2, `<order><lineitem price="90"/></order>`)
	step("Insert with known paths", false)

	if _, err := tab.CreateXMLIndex("li_price", "orddoc", "//lineitem/@price", xmlindex.Double); err != nil {
		t.Fatal(err)
	}
	step("CreateXMLIndex", true)

	if _, err := tab.CreateRelIndex("by_ordid", "ordid"); err != nil {
		t.Fatal(err)
	}
	step("CreateRelIndex", true)

	if err := tab.Delete(id); err != nil {
		t.Fatal(err)
	}
	step("Delete leaving paths populated", false)

	if err := tab.Delete(id2); err != nil {
		t.Fatal(err)
	}
	step("Delete emptying the path set", true)

	if !tab.DropIndex("li_price") {
		t.Fatal("DropIndex li_price: not found")
	}
	step("DropIndex xml", true)

	if !tab.DropIndex("by_ordid") {
		t.Fatal("DropIndex by_ordid: not found")
	}
	step("DropIndex rel", true)

	if tab.DropIndex("nope") {
		t.Fatal("DropIndex of a missing index reported true")
	}
	step("DropIndex missing", false)

	if err := c.DropTable("orders"); err != nil {
		t.Fatal(err)
	}
	step("DropTable", true)
}

func TestForEachRow(t *testing.T) {
	_, tab := ordersTable(t)
	for i := int64(0); i < 5; i++ {
		insertOrder(t, tab, i, `<order/>`)
	}

	var ids []string
	tab.ForEachRow(func(r *Row) bool {
		ids = append(ids, r.Cells[0].V.Lexical())
		return true
	})
	if len(ids) != 5 {
		t.Fatalf("visited %d rows, want 5", len(ids))
	}
	for i, id := range ids {
		if want := fmt.Sprint(i); id != want {
			t.Fatalf("insertion order violated: ids = %v", ids)
		}
	}

	visited := 0
	tab.ForEachRow(func(r *Row) bool {
		visited++
		return visited < 2
	})
	if visited != 2 {
		t.Fatalf("early stop visited %d rows, want 2", visited)
	}
}
