package storage

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/xqdb/xqdb/internal/xdm"
	"github.com/xqdb/xqdb/internal/xmlindex"
	"github.com/xqdb/xqdb/internal/xmlparse"
)

// bulkRows parses n order documents and stages them as rows with
// reserved ids plus one extractor run per given index.
func bulkRows(t *testing.T, tab *Table, n int, indexes ...*XMLIndex) ([]Row, map[*xmlindex.Index][][][]byte) {
	t.Helper()
	first := tab.ReserveIDs(n)
	exts := make(map[*xmlindex.Index]*xmlindex.Extractor, len(indexes))
	for _, xi := range indexes {
		exts[xi.Index] = xi.Index.NewExtractor()
	}
	rows := make([]Row, n)
	for i := range rows {
		id := first + uint32(i)
		doc, err := xmlparse.Parse(fmt.Sprintf(`<order><custid>%d</custid><lineitem price="%d"/></order>`, i, 100+i))
		if err != nil {
			t.Fatal(err)
		}
		rows[i] = Row{ID: id, Cells: []Cell{{V: xdm.NewInteger(int64(i))}, {Doc: doc}}}
		for _, e := range exts {
			if err := e.AddDoc(id, doc); err != nil {
				t.Fatal(err)
			}
		}
	}
	runs := make(map[*xmlindex.Index][][][]byte, len(exts))
	for ix, e := range exts {
		runs[ix] = [][][]byte{e.Run()}
	}
	return rows, runs
}

func TestBulkAppendMatchesInsert(t *testing.T) {
	_, tab := ordersTable(t)
	xi, err := tab.CreateXMLIndex("li_price", "orddoc", "//lineitem/@price", xmlindex.Double)
	if err != nil {
		t.Fatal(err)
	}
	insertOrder(t, tab, 1, `<order><lineitem price="7"/></order>`)

	rows, runs := bulkRows(t, tab, 20, xi)
	if err := tab.BulkAppend(rows, runs, nil, nil); err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 21 {
		t.Fatalf("Len = %d, want 21", tab.Len())
	}
	if got := xi.Index.Stats().Entries; got != 21 {
		t.Fatalf("index entries = %d, want 21", got)
	}
	// Every bulk row is fetchable and probe-visible.
	for _, row := range rows {
		got, ok := tab.RowByID(row.ID)
		if !ok || got.Cells[1].Doc == nil {
			t.Fatalf("row %d missing after bulk append", row.ID)
		}
	}
	v := xdm.NewDouble(110)
	entries, err := xi.Index.Scan(xmlindex.Probe{Range: xmlindex.Equality(v)})
	if err != nil || len(entries) != 1 {
		t.Fatalf("probe after bulk append: %v, %v", entries, err)
	}
	// The reserved range really was consumed: a later insert gets a
	// fresh id beyond it.
	id := insertOrder(t, tab, 99, `<order><lineitem price="1"/></order>`)
	if id <= rows[len(rows)-1].ID {
		t.Fatalf("post-bulk insert id %d inside the reserved range", id)
	}
}

// TestBulkAppendAtomicRollback: a failure in phase A leaves rows and
// indexes exactly as they were.
func TestBulkAppendAtomicRollback(t *testing.T) {
	_, tab := ordersTable(t)
	xi, err := tab.CreateXMLIndex("li_price", "orddoc", "//lineitem/@price", xmlindex.Double)
	if err != nil {
		t.Fatal(err)
	}
	insertOrder(t, tab, 1, `<order><lineitem price="7"/></order>`)

	rows, runs := bulkRows(t, tab, 5, xi)
	// Wrong shape on the last row: phase A must reject the whole batch.
	rows[4].Cells = rows[4].Cells[:1]
	if err := tab.BulkAppend(rows, runs, nil, nil); err == nil {
		t.Fatal("short row accepted")
	}
	if tab.Len() != 1 {
		t.Fatalf("Len = %d after failed bulk append, want 1", tab.Len())
	}
	if got := xi.Index.Stats().Entries; got != 1 {
		t.Fatalf("index entries = %d after failed bulk append, want 1", got)
	}

	// A duplicate row id is likewise rejected up front.
	rows2, runs2 := bulkRows(t, tab, 2, xi)
	rows2[1].ID = 1
	if err := tab.BulkAppend(rows2, runs2, nil, nil); err == nil || !strings.Contains(err.Error(), "row id") {
		t.Fatalf("duplicate id: err = %v", err)
	}
	if tab.Len() != 1 || xi.Index.Stats().Entries != 1 {
		t.Fatal("duplicate-id batch left residue")
	}
}

// TestBulkAppendMidLoadIndex: an index created between extraction and
// append (no runs entry) is maintained per row — and unwound on failure.
func TestBulkAppendMidLoadIndex(t *testing.T) {
	_, tab := ordersTable(t)
	rows, runs := bulkRows(t, tab, 4) // extracted against zero indexes
	late, err := tab.CreateXMLIndex("late", "orddoc", "//custid", xmlindex.Varchar)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.BulkAppend(rows, runs, nil, nil); err != nil {
		t.Fatal(err)
	}
	if got := late.Index.Stats().Entries; got != 4 {
		t.Fatalf("late index entries = %d, want 4", got)
	}

	// Failure after some per-row inserts unwinds them.
	rows2, runs2 := bulkRows(t, tab, 3)
	rows2[2].Cells = rows2[2].Cells[:1]
	if err := tab.BulkAppend(rows2, runs2, nil, nil); err == nil {
		t.Fatal("short row accepted")
	}
	if got := late.Index.Stats().Entries; got != 4 {
		t.Fatalf("late index entries = %d after rollback, want 4", got)
	}
}

// TestBulkAppendCheckAborts: the caller's check aborts the append with a
// full rollback.
func TestBulkAppendCheckAborts(t *testing.T) {
	_, tab := ordersTable(t)
	xi, err := tab.CreateXMLIndex("li_price", "orddoc", "//lineitem/@price", xmlindex.Double)
	if err != nil {
		t.Fatal(err)
	}
	rows, runs := bulkRows(t, tab, 6, xi)
	boom := errors.New("canceled")
	err = tab.BulkAppend(rows, runs, nil, func(int) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the check's error", err)
	}
	if tab.Len() != 0 || xi.Index.Stats().Entries != 0 {
		t.Fatal("aborted bulk append left residue")
	}
}

// TestBulkAppendMaintainsRelIndexes: relational indexes see bulk rows.
func TestBulkAppendMaintainsRelIndexes(t *testing.T) {
	_, tab := ordersTable(t)
	ri, err := tab.CreateRelIndex("by_id", "ordid")
	if err != nil {
		t.Fatal(err)
	}
	rows, runs := bulkRows(t, tab, 3)
	if err := tab.BulkAppend(rows, runs, nil, nil); err != nil {
		t.Fatal(err)
	}
	ids, err := ri.Lookup(xdm.NewInteger(2))
	if err != nil || len(ids) != 1 || ids[0] != rows[2].ID {
		t.Fatalf("rel lookup = %v, %v", ids, err)
	}
}
