package storage

import (
	"testing"

	"github.com/xqdb/xqdb/internal/postings"
	"github.com/xqdb/xqdb/internal/xdm"
)

func TestCollectionResolution(t *testing.T) {
	c, tab := ordersTable(t)
	insertOrder(t, tab, 1, `<order><a/></order>`)
	insertOrder(t, tab, 2, `<order><b/></order>`)
	docs, err := c.Collection("ORDERS.ORDDOC")
	if err != nil || len(docs) != 2 {
		t.Fatalf("collection: %v %v", docs, err)
	}
	if _, err := c.Collection("nodot"); err == nil {
		t.Error("missing dot must fail")
	}
	if _, err := c.Collection("orders.nosuch"); err == nil {
		t.Error("unknown column must fail")
	}
	if _, err := c.Collection("orders.ordid"); err == nil {
		t.Error("non-XML column must fail")
	}
	if _, err := c.Collection("nosuch.col"); err == nil {
		t.Error("unknown table must fail")
	}
}

func TestCollectionFiltered(t *testing.T) {
	c, tab := ordersTable(t)
	id1 := insertOrder(t, tab, 1, `<order><a/></order>`)
	insertOrder(t, tab, 2, `<order><b/></order>`)
	docs, err := c.CollectionFiltered("orders.orddoc", postings.List{id1})
	if err != nil || len(docs) != 1 {
		t.Fatalf("filtered: %d %v", len(docs), err)
	}
	if _, err := c.CollectionFiltered("nodot", nil); err == nil {
		t.Error("missing dot must fail")
	}
}

func TestTablesListing(t *testing.T) {
	c, _ := ordersTable(t)
	// Created out of name order: Tables() must still list them sorted,
	// not in map-iteration order.
	for _, name := range []string{"zeta", "extra", "middle"} {
		if _, err := c.CreateTable(name, []Column{{Name: "x", Type: Integer}}); err != nil {
			t.Fatal(err)
		}
	}
	tabs := c.Tables()
	if got := len(tabs); got != 4 {
		t.Fatalf("tables = %d", got)
	}
	want := []string{"extra", "middle", "orders", "zeta"}
	for i, tab := range tabs {
		if tab.Name != want[i] {
			t.Fatalf("Tables()[%d] = %s, want %s (listing must be name-sorted)", i, tab.Name, want[i])
		}
	}
}

func TestColumnTypeByName(t *testing.T) {
	cases := map[string]ColumnType{
		"integer": Integer, "INTEGER": Integer, "xml": XML,
		"varchar": Varchar, "timestamp": Timestamp, "decimal": Decimal,
	}
	for name, want := range cases {
		got, ok := ColumnTypeByName(name)
		if !ok || got != want {
			t.Errorf("ColumnTypeByName(%q) = %v,%v", name, got, ok)
		}
	}
	if _, ok := ColumnTypeByName("blob"); ok {
		t.Error("blob should be unknown")
	}
	if Integer.String() != "integer" || XML.String() != "xml" {
		t.Error("type names")
	}
}

func TestXDMTypeMapping(t *testing.T) {
	cases := map[ColumnType]xdm.Type{
		Integer: xdm.Integer, Double: xdm.Double, Decimal: xdm.Decimal,
		Date: xdm.Date, Timestamp: xdm.DateTime, Varchar: xdm.String, XML: xdm.String,
	}
	for ct, want := range cases {
		if got := ct.XDMType(); got != want {
			t.Errorf("%v.XDMType() = %v, want %v", ct, got, want)
		}
	}
}

func TestEncodeSQLKeyOrdering(t *testing.T) {
	lt := func(a, b xdm.Value) bool {
		ka, kb := string(encodeSQLKey(a)), string(encodeSQLKey(b))
		return ka < kb
	}
	if !lt(xdm.NewDouble(-1), xdm.NewDouble(1)) {
		t.Error("negative < positive")
	}
	if !lt(xdm.NewInteger(2), xdm.NewInteger(10)) {
		t.Error("2 < 10 numerically, not lexically")
	}
	if !lt(xdm.NewString("a"), xdm.NewString("b")) {
		t.Error("string order")
	}
	// Trailing blanks fold (SQL PAD SPACE).
	if string(encodeSQLKey(xdm.NewString("x "))) != string(encodeSQLKey(xdm.NewString("x"))) {
		t.Error("trailing blanks should not affect SQL keys")
	}
	d1, _ := xdm.NewString("2001-01-01").Cast(xdm.Date)
	d2, _ := xdm.NewString("2002-01-01").Cast(xdm.Date)
	if !lt(d1, d2) {
		t.Error("date order")
	}
}

func TestRelIndexDropDirect(t *testing.T) {
	c := NewCatalog()
	tab, _ := c.CreateTable("p", []Column{{Name: "id", Type: Varchar}})
	if _, err := tab.CreateRelIndex("ix", "id"); err != nil {
		t.Fatal(err)
	}
	if !tab.DropIndex("IX") {
		t.Error("case-insensitive drop failed")
	}
	if tab.DropIndex("ix") {
		t.Error("double drop should report false")
	}
}

func TestRowsSnapshot(t *testing.T) {
	_, tab := ordersTable(t)
	insertOrder(t, tab, 1, `<order/>`)
	rows := tab.Rows()
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The snapshot is stable across later inserts.
	insertOrder(t, tab, 2, `<order/>`)
	if len(rows) != 1 {
		t.Error("snapshot mutated")
	}
	if _, ok := tab.RowByID(999); ok {
		t.Error("missing row id should not resolve")
	}
}

func TestXMLIndexLookupHelpers(t *testing.T) {
	_, tab := ordersTable(t)
	if _, err := tab.CreateXMLIndex("a", "orddoc", "//x", 0); err != nil {
		t.Fatal(err)
	}
	if got := len(tab.XMLIndexes("")); got != 1 {
		t.Errorf("all indexes = %d", got)
	}
	if got := len(tab.XMLIndexes("ORDDOC")); got != 1 {
		t.Errorf("by column = %d", got)
	}
	if got := len(tab.XMLIndexes("other")); got != 0 {
		t.Errorf("other column = %d", got)
	}
	if got := len(tab.RelIndexes("")); got != 0 {
		t.Errorf("rel indexes = %d", got)
	}
}
