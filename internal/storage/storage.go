// Package storage implements tables with relational and XML-typed
// columns, row storage, relational B-tree indexes, and XML value index
// maintenance. An XML column stores parsed XDM document trees; as in the
// paper's system, schemas associate with documents, not columns, so one
// column freely mixes validated and non-validated documents of different
// schema versions.
package storage

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/xqdb/xqdb/internal/btree"
	"github.com/xqdb/xqdb/internal/guard"
	"github.com/xqdb/xqdb/internal/metrics"
	"github.com/xqdb/xqdb/internal/pattern"
	"github.com/xqdb/xqdb/internal/postings"
	"github.com/xqdb/xqdb/internal/synopsis"
	"github.com/xqdb/xqdb/internal/xdm"
	"github.com/xqdb/xqdb/internal/xmlindex"
	"github.com/xqdb/xqdb/internal/xmlparse"
)

// ColumnType enumerates SQL column types.
type ColumnType uint8

// Column types.
const (
	Integer ColumnType = iota
	Double
	Varchar
	Date
	Timestamp
	Decimal
	XML
)

var columnTypeNames = [...]string{"integer", "double", "varchar", "date", "timestamp", "decimal", "xml"}

func (t ColumnType) String() string { return columnTypeNames[t] }

// ColumnTypeByName resolves a DDL type name (case-insensitive).
func ColumnTypeByName(name string) (ColumnType, bool) {
	name = strings.ToLower(name)
	for t, n := range columnTypeNames {
		if n == name {
			return ColumnType(t), true
		}
	}
	return 0, false
}

// XDMType maps a SQL column type to the XDM type its values carry.
func (t ColumnType) XDMType() xdm.Type {
	switch t {
	case Integer:
		return xdm.Integer
	case Double:
		return xdm.Double
	case Decimal:
		return xdm.Decimal
	case Date:
		return xdm.Date
	case Timestamp:
		return xdm.DateTime
	default:
		return xdm.String
	}
}

// Column describes one table column.
type Column struct {
	Name string
	Type ColumnType
	Size int // varchar/decimal length limit; 0 = unlimited
}

// Cell is one stored value: NULL, a scalar, or an XML document.
type Cell struct {
	Null bool
	V    xdm.Value // scalar columns
	Doc  *xdm.Node // XML columns (a document node)
}

// Row is one table row. ID doubles as the document id of the row's XML
// cells in XML indexes.
type Row struct {
	ID    uint32
	Cells []Cell
}

// Table is one table: columns, rows, and indexes.
type Table struct {
	Name    string
	Columns []Column

	mu     sync.RWMutex
	rows   []Row
	byID   map[uint32]int // row id -> index into rows
	nextID uint32

	xmlIndexes []*XMLIndex
	relIndexes []*RelIndex

	// syns holds one path synopsis per column (nil for non-XML columns),
	// parallel to Columns and immutable after CreateTable — only the
	// synopses' contents change, under their own locks.
	syns []*synopsis.Synopsis

	// annotated counts stored documents per column whose root carries a
	// schema-validation stamp (grown on demand, guarded by mu). Typed
	// values can raise comparison errors the tolerant index never
	// recorded, so one annotated document disables index-only answers
	// for the whole column.
	annotated []int

	// catVersion points at the owning catalog's schema version counter;
	// index DDL on this table bumps it. Nil for tables created outside a
	// catalog (tests).
	catVersion *atomic.Uint64
	// metrics is the owning catalog's registry (nil outside an engine);
	// indexes created on this table are instrumented against it.
	metrics *metrics.Registry
	// probeCacheCap bounds the probe-result cache of XML indexes created
	// on this table; 0 keeps the xmlindex default.
	probeCacheCap int
}

// bumpVersion records a schema change against the owning catalog.
func (t *Table) bumpVersion() {
	if t.catVersion != nil {
		t.catVersion.Add(1)
	}
}

// XMLIndex couples an xmlindex.Index with the column it indexes.
type XMLIndex struct {
	Name   string
	Column string
	Index  *xmlindex.Index
}

// RelIndex is a relational single-column B-tree index.
type RelIndex struct {
	Name     string
	Column   string
	tree     *btree.Tree
	table    *Table
	col      int
	mLookups *metrics.Counter
}

// Catalog is the set of tables.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
	// version counts schema changes: CREATE/DROP TABLE and CREATE/DROP
	// INDEX on any table of this catalog. Cached query plans embed the
	// version they were built against and are invalidated when it moves.
	// Data changes (insert/delete) do not bump it — plans hold live table
	// and index objects, not data snapshots — with one exception: a
	// change to a column's path *set* (a new distinct path appearing, or
	// the last node of a path disappearing) bumps it, because cached
	// plans embed synopsis-driven probe short-circuits that are only
	// sound against the path set they were decided on. Count-only
	// changes leave cached selectivity estimates stale, which can only
	// reorder probes, never change results.
	version atomic.Uint64
	// metrics, when set via SetMetrics, instruments indexes created
	// through this catalog.
	metrics *metrics.Registry
	// probeCacheCap, when set via SetProbeCacheCapacity, bounds the
	// probe-result cache of XML indexes created through this catalog.
	probeCacheCap int
}

// SetMetrics attaches a metrics registry: indexes created on tables of
// this catalog from now on feed it (xmlindex.*, btree.*, relindex.*
// instruments). Call once, right after NewCatalog and before any DDL —
// already-existing indexes are not retrofitted.
func (c *Catalog) SetMetrics(reg *metrics.Registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.metrics = reg
	for _, t := range c.tables {
		t.metrics = reg
	}
}

// SetProbeCacheCapacity follows the SetMetrics pattern: XML indexes
// created on tables of this catalog from now on bound their probe-result
// LRU at n entries (n <= 0 keeps the xmlindex default). Call right after
// NewCatalog — already-existing indexes are not resized.
func (c *Catalog) SetProbeCacheCapacity(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.probeCacheCap = n
	for _, t := range c.tables {
		t.probeCacheCap = n
	}
}

// Version returns the current schema version counter.
func (c *Catalog) Version() uint64 { return c.version.Load() }

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: map[string]*Table{}}
}

// CreateTable registers a new table.
func (c *Catalog) CreateTable(name string, cols []Column) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := c.tables[key]; ok {
		return nil, fmt.Errorf("table %s already exists", name)
	}
	seen := map[string]bool{}
	for _, col := range cols {
		k := strings.ToLower(col.Name)
		if seen[k] {
			return nil, fmt.Errorf("duplicate column %s in table %s", col.Name, name)
		}
		seen[k] = true
	}
	t := &Table{Name: strings.ToLower(name), Columns: cols, byID: map[uint32]int{}, nextID: 1,
		catVersion: &c.version, metrics: c.metrics, probeCacheCap: c.probeCacheCap}
	t.syns = make([]*synopsis.Synopsis, len(cols))
	for i, col := range cols {
		if col.Type == XML {
			t.syns[i] = synopsis.New()
			if c.metrics != nil {
				t.syns[i].Instrument(c.metrics.Gauge("synopsis.paths"))
			}
		}
	}
	c.tables[key] = t
	c.version.Add(1)
	return t, nil
}

// DropTable removes a table.
func (c *Catalog) DropTable(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := c.tables[key]; !ok {
		return fmt.Errorf("unknown table %s", name)
	}
	delete(c.tables, key)
	c.version.Add(1)
	return nil
}

// Table resolves a table by name (case-insensitive).
func (c *Catalog) Table(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("unknown table %s", name)
	}
	return t, nil
}

// Tables lists all tables, sorted by name so callers that render the
// list (SHOW TABLES, the advisor's setup dump) see a stable order.
func (c *Catalog) Tables() []*Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Collection implements the db2-fn:xmlcolumn accessor: it resolves
// "TABLE.COLUMN" (case-insensitive) to the column's documents in row
// order, making Catalog usable as an xquery.CollectionResolver.
func (c *Catalog) Collection(name string) ([]*xdm.Node, error) {
	if err := guard.Fault("storage.collection:" + strings.ToLower(name)); err != nil {
		return nil, err
	}
	dot := strings.IndexByte(name, '.')
	if dot < 0 {
		return nil, fmt.Errorf("db2-fn:xmlcolumn: argument %q must be TABLE.COLUMN", name)
	}
	t, err := c.Table(name[:dot])
	if err != nil {
		return nil, err
	}
	ci, err := t.ColumnIndex(name[dot+1:])
	if err != nil {
		return nil, err
	}
	if t.Columns[ci].Type != XML {
		return nil, fmt.Errorf("db2-fn:xmlcolumn: %s is not an XML column", name)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	var docs []*xdm.Node
	//xqvet:unbounded-ok the CollectionResolver interface has no guard; the engine guards per document downstream
	for _, row := range t.rows {
		cell := row.Cells[ci]
		if !cell.Null && cell.Doc != nil {
			docs = append(docs, cell.Doc)
		}
	}
	return docs, nil
}

// CollectionFiltered is Collection restricted to the given row ids — the
// I(P, D) pre-filter of Definition 1 applied to a whole-column access.
// allowed is a sorted posting list; an empty (or nil) list admits no
// documents.
func (c *Catalog) CollectionFiltered(name string, allowed postings.List) ([]*xdm.Node, error) {
	dot := strings.IndexByte(name, '.')
	if dot < 0 {
		return nil, fmt.Errorf("db2-fn:xmlcolumn: argument %q must be TABLE.COLUMN", name)
	}
	t, err := c.Table(name[:dot])
	if err != nil {
		return nil, err
	}
	ci, err := t.ColumnIndex(name[dot+1:])
	if err != nil {
		return nil, err
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	var docs []*xdm.Node
	//xqvet:unbounded-ok the CollectionResolver interface has no guard; the engine guards per document downstream
	for _, row := range t.rows {
		if !allowed.Contains(row.ID) {
			continue
		}
		cell := row.Cells[ci]
		if !cell.Null && cell.Doc != nil {
			docs = append(docs, cell.Doc)
		}
	}
	return docs, nil
}

// Synopsis returns the path summary of an XML column, nil when the
// column does not exist, is not XML-typed, or the table was built
// outside a catalog. The synopsis is safe to read concurrently with
// table mutation; its counts always reflect committed documents.
func (t *Table) Synopsis(column string) *synopsis.Synopsis {
	ci, err := t.ColumnIndex(column)
	if err != nil || ci >= len(t.syns) {
		return nil
	}
	return t.syns[ci]
}

// syn returns the column's synopsis or nil; safe for tables built
// without CreateTable (tests), where syns is nil.
func (t *Table) syn(ci int) *synopsis.Synopsis {
	if ci >= len(t.syns) {
		return nil
	}
	return t.syns[ci]
}

// ColumnIndex resolves a column name to its position.
func (t *Table) ColumnIndex(name string) (int, error) {
	for i, c := range t.Columns {
		if strings.EqualFold(c.Name, name) {
			return i, nil
		}
	}
	return 0, fmt.Errorf("unknown column %s.%s", t.Name, name)
}

// Insert appends a row. XML cells may be given as parsed documents or as
// string values (which are parsed here). Indexes are maintained; an index
// maintenance error (e.g. a list-typed node) rejects the insert.
func (t *Table) Insert(cells []Cell) (uint32, error) {
	if len(cells) != len(t.Columns) {
		return 0, fmt.Errorf("table %s: %d values for %d columns", t.Name, len(cells), len(t.Columns))
	}
	if err := guard.Fault("storage.insert:" + t.Name); err != nil {
		return 0, fmt.Errorf("insert into %s: %w", t.Name, err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id := t.nextID
	for i := range cells {
		if err := t.coerceCell(&cells[i], i); err != nil {
			return 0, err
		}
	}
	row := Row{ID: id, Cells: cells}
	// Maintain XML indexes first so a rejection leaves no trace.
	var done []*XMLIndex
	for _, xi := range t.xmlIndexes {
		ci, _ := t.ColumnIndex(xi.Column)
		cell := cells[ci]
		if cell.Null || cell.Doc == nil {
			continue
		}
		if err := xi.Index.InsertDoc(id, cell.Doc); err != nil {
			for _, undo := range done {
				uc, _ := t.ColumnIndex(undo.Column)
				if !cells[uc].Null && cells[uc].Doc != nil {
					undo.Index.DeleteDoc(id, cells[uc].Doc)
				}
			}
			return 0, fmt.Errorf("insert into %s: %w", t.Name, err)
		}
		done = append(done, xi)
	}
	t.nextID++
	t.byID[id] = len(t.rows)
	t.rows = append(t.rows, row)
	for _, ri := range t.relIndexes {
		ri.insert(row)
	}
	// Synopsis maintenance is infallible, so it runs after the row has
	// landed. A new distinct path invalidates cached plans (their skip
	// decisions assumed it did not exist); count-only growth does not.
	pathSetChanged := false
	for i := range row.Cells {
		cell := row.Cells[i]
		if cell.Null || cell.Doc == nil {
			continue
		}
		if t.syn(i).AddDoc(cell.Doc) {
			pathSetChanged = true
		}
		if cell.Doc.TypeAnn.Valid {
			t.bumpAnnotated(i, 1)
		}
	}
	if pathSetChanged {
		t.bumpVersion()
	}
	return id, nil
}

// coerceCell validates and converts a cell against column i's type.
func (t *Table) coerceCell(cell *Cell, i int) error {
	col := t.Columns[i]
	if cell.Null {
		return nil
	}
	if col.Type == XML {
		if cell.Doc != nil {
			return nil
		}
		doc, err := xmlparse.Parse(cell.V.Lexical())
		if err != nil {
			return fmt.Errorf("column %s: %w", col.Name, err)
		}
		cell.Doc = doc
		cell.V = xdm.Value{}
		return nil
	}
	if cell.Doc != nil {
		return fmt.Errorf("column %s: XML value in non-XML column", col.Name)
	}
	v, err := cell.V.Cast(col.Type.XDMType())
	if err != nil {
		return fmt.Errorf("column %s: %w", col.Name, err)
	}
	if col.Type == Varchar && col.Size > 0 && len(v.S) > col.Size {
		return fmt.Errorf("column %s: value length %d exceeds varchar(%d)", col.Name, len(v.S), col.Size)
	}
	cell.V = v
	return nil
}

// Delete removes a row by id.
func (t *Table) Delete(id uint32) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	pos, ok := t.byID[id]
	if !ok {
		return fmt.Errorf("table %s: no row %d", t.Name, id)
	}
	row := t.rows[pos]
	for _, xi := range t.xmlIndexes {
		ci, _ := t.ColumnIndex(xi.Column)
		cell := row.Cells[ci]
		if !cell.Null && cell.Doc != nil {
			xi.Index.DeleteDoc(id, cell.Doc)
		}
	}
	for _, ri := range t.relIndexes {
		ri.delete(row)
	}
	t.rows = append(t.rows[:pos], t.rows[pos+1:]...)
	delete(t.byID, id)
	for i := pos; i < len(t.rows); i++ {
		t.byID[t.rows[i].ID] = i
	}
	// Removing the last occurrence of a path shrinks the path set: plans
	// that ranked or kept probes for it must be rebuilt.
	pathSetChanged := false
	for i := range row.Cells {
		cell := row.Cells[i]
		if cell.Null || cell.Doc == nil {
			continue
		}
		if t.syn(i).RemoveDoc(cell.Doc) {
			pathSetChanged = true
		}
		if cell.Doc.TypeAnn.Valid {
			t.bumpAnnotated(i, -1)
		}
	}
	if pathSetChanged {
		t.bumpVersion()
	}
	return nil
}

// bumpAnnotated adjusts the annotated-document count of column ci.
// Callers hold t.mu.
func (t *Table) bumpAnnotated(ci, delta int) {
	for len(t.annotated) <= ci {
		t.annotated = append(t.annotated, 0)
	}
	t.annotated[ci] += delta
}

// HasAnnotatedDocs reports whether any stored document of the column
// carries schema type annotations (InsertValidated / validated ingest).
func (t *Table) HasAnnotatedDocs(column string) bool {
	ci, err := t.ColumnIndex(column)
	if err != nil {
		return false
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return ci < len(t.annotated) && t.annotated[ci] > 0
}

// Rows snapshots all rows in insertion order.
func (t *Table) Rows() []Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return append([]Row(nil), t.rows...)
}

// ForEachRow visits rows in insertion order under the read lock, without
// copying the row slice. Returning false stops the iteration. The
// callback must not re-enter this table (Insert/Delete/DDL or another
// query) — RWMutex read locks do not nest across a pending writer.
func (t *Table) ForEachRow(f func(*Row) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	//xqvet:unbounded-ok the visitor's contract is the bound: callers thread the guard through f
	for i := range t.rows {
		//xqvet:lockescape-ok documented contract above: f must not re-enter the table
		if !f(&t.rows[i]) {
			return
		}
	}
}

// RowByID fetches one row.
func (t *Table) RowByID(id uint32) (Row, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	pos, ok := t.byID[id]
	if !ok {
		return Row{}, false
	}
	return t.rows[pos], true
}

// Len returns the row count.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// CreateXMLIndex creates an XML value index on an XML column and builds
// it over existing rows.
func (t *Table) CreateXMLIndex(name, column, xmlPattern string, typ xmlindex.Type) (*XMLIndex, error) {
	ci, err := t.ColumnIndex(column)
	if err != nil {
		return nil, err
	}
	if t.Columns[ci].Type != XML {
		return nil, fmt.Errorf("column %s.%s is not an XML column", t.Name, column)
	}
	pat, err := pattern.Parse(xmlPattern)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, xi := range t.xmlIndexes {
		if strings.EqualFold(xi.Name, name) {
			return nil, fmt.Errorf("index %s already exists", name)
		}
	}
	xi := &XMLIndex{Name: name, Column: strings.ToLower(column), Index: xmlindex.New(name, pat, typ)}
	xi.Index.Instrument(t.metrics)
	if t.probeCacheCap > 0 {
		xi.Index.SetProbeCacheCapacity(t.probeCacheCap)
	}
	//xqvet:unbounded-ok DDL index build runs outside any query; no guard is in scope by design
	for _, row := range t.rows {
		cell := row.Cells[ci]
		if cell.Null || cell.Doc == nil {
			continue
		}
		if err := xi.Index.InsertDoc(row.ID, cell.Doc); err != nil {
			return nil, fmt.Errorf("building index %s: %w", name, err)
		}
	}
	t.xmlIndexes = append(t.xmlIndexes, xi)
	t.bumpVersion()
	return xi, nil
}

// XMLIndexes returns the XML indexes on a column ("" = all).
func (t *Table) XMLIndexes(column string) []*XMLIndex {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []*XMLIndex
	for _, xi := range t.xmlIndexes {
		if column == "" || strings.EqualFold(xi.Column, column) {
			out = append(out, xi)
		}
	}
	return out
}

// DropIndex removes an XML or relational index by name. The second
// result reports whether an index with that name existed.
func (t *Table) DropIndex(name string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, xi := range t.xmlIndexes {
		if strings.EqualFold(xi.Name, name) {
			t.xmlIndexes = append(t.xmlIndexes[:i], t.xmlIndexes[i+1:]...)
			t.bumpVersion()
			return true
		}
	}
	for i, ri := range t.relIndexes {
		if strings.EqualFold(ri.Name, name) {
			t.relIndexes = append(t.relIndexes[:i], t.relIndexes[i+1:]...)
			t.bumpVersion()
			return true
		}
	}
	return false
}

// CreateRelIndex creates a relational B-tree index on a scalar column.
func (t *Table) CreateRelIndex(name, column string) (*RelIndex, error) {
	ci, err := t.ColumnIndex(column)
	if err != nil {
		return nil, err
	}
	if t.Columns[ci].Type == XML {
		return nil, fmt.Errorf("cannot create a relational index on XML column %s", column)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ri := &RelIndex{Name: name, Column: strings.ToLower(column), tree: btree.New(), table: t, col: ci}
	if t.metrics != nil {
		ri.mLookups = t.metrics.Counter("relindex.lookups")
		ri.tree.Instrument(t.metrics.Counter("btree.scans"), t.metrics.Counter("btree.keys_visited"))
	}
	//xqvet:unbounded-ok DDL index build runs outside any query; no guard is in scope by design
	for _, row := range t.rows {
		ri.insert(row)
	}
	t.relIndexes = append(t.relIndexes, ri)
	t.bumpVersion()
	return ri, nil
}

// RelIndexes returns the relational indexes on a column ("" = all).
func (t *Table) RelIndexes(column string) []*RelIndex {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []*RelIndex
	for _, ri := range t.relIndexes {
		if column == "" || strings.EqualFold(ri.Column, column) {
			out = append(out, ri)
		}
	}
	return out
}

func (ri *RelIndex) key(row Row) ([]byte, bool) {
	cell := row.Cells[ri.col]
	if cell.Null {
		return nil, false
	}
	k := encodeSQLKey(cell.V)
	k = append(k, byte(row.ID>>24), byte(row.ID>>16), byte(row.ID>>8), byte(row.ID))
	return k, true
}

func (ri *RelIndex) insert(row Row) {
	if k, ok := ri.key(row); ok {
		ri.tree.Insert(k, nil)
	}
}

func (ri *RelIndex) delete(row Row) {
	if k, ok := ri.key(row); ok {
		ri.tree.Delete(k)
	}
}

// Lookup returns the row ids matching an equality probe under SQL
// comparison semantics (trailing blanks trimmed for strings). It holds
// the table's read lock while scanning: the tree is mutated by inserts
// and deletes, which run under the write lock.
func (ri *RelIndex) Lookup(v xdm.Value) ([]uint32, error) {
	cv, err := v.Cast(ri.table.Columns[ri.col].Type.XDMType())
	if err != nil {
		return nil, err
	}
	ri.table.mu.RLock()
	defer ri.table.mu.RUnlock()
	ri.mLookups.Inc()
	prefix := encodeSQLKey(cv)
	var ids []uint32
	ri.tree.ScanPrefix(prefix, func(k, _ []byte) bool {
		n := len(k)
		ids = append(ids, uint32(k[n-4])<<24|uint32(k[n-3])<<16|uint32(k[n-2])<<8|uint32(k[n-1]))
		return true
	})
	return ids, nil
}

// encodeSQLKey encodes a scalar under SQL comparison rules: numerics by
// order-preserving float encoding, strings with trailing blanks trimmed.
func encodeSQLKey(v xdm.Value) []byte {
	if v.T.IsNumeric() || v.T == xdm.Date || v.T == xdm.DateTime {
		f := v.Number()
		if v.T == xdm.Date || v.T == xdm.DateTime {
			f = float64(v.M.Unix())
		}
		return encodeOrderedFloat(f)
	}
	s := strings.TrimRight(v.Lexical(), " ")
	out := make([]byte, 0, len(s)+2)
	for i := 0; i < len(s); i++ {
		if s[i] == 0 {
			out = append(out, 0, 0xff)
		} else {
			out = append(out, s[i])
		}
	}
	return append(out, 0, 0)
}

func encodeOrderedFloat(f float64) []byte {
	bits := floatBits(f)
	return []byte{
		byte(bits >> 56), byte(bits >> 48), byte(bits >> 40), byte(bits >> 32),
		byte(bits >> 24), byte(bits >> 16), byte(bits >> 8), byte(bits),
	}
}
