package sqlxml

import (
	"fmt"
	"strings"
	"unicode"
)

type sqlTokenKind uint8

const (
	sqlEOF sqlTokenKind = iota
	sqlIdent
	sqlQuotedIdent // "name" — case-preserved identifier
	sqlString      // '...'
	sqlNumber
	sqlSym
)

type sqlToken struct {
	kind  sqlTokenKind
	value string
	pos   int
}

type sqlLexer struct {
	src string
	pos int
}

func sqlErr(src string, pos int, format string, args ...any) error {
	line, col := 1, 1
	for i := 0; i < pos && i < len(src); i++ {
		if src[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return fmt.Errorf("sql syntax error at line %d col %d: %s", line, col, fmt.Sprintf(format, args...))
}

var sqlSymbols = []string{"<>", "!=", "<=", ">=", "(", ")", ",", ".", ";", "=", "<", ">", "*"}

func (l *sqlLexer) next() (sqlToken, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		if strings.HasPrefix(l.src[l.pos:], "--") {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		break
	}
	if l.pos >= len(l.src) {
		return sqlToken{kind: sqlEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]

	// SQL string literal with doubled-quote escaping.
	if c == '\'' {
		var b strings.Builder
		i := l.pos + 1
		for i < len(l.src) {
			if l.src[i] == '\'' {
				if i+1 < len(l.src) && l.src[i+1] == '\'' {
					b.WriteByte('\'')
					i += 2
					continue
				}
				l.pos = i + 1
				return sqlToken{kind: sqlString, value: b.String(), pos: start}, nil
			}
			b.WriteByte(l.src[i])
			i++
		}
		return sqlToken{}, sqlErr(l.src, start, "unterminated string literal")
	}

	// Delimited identifier.
	if c == '"' {
		end := strings.IndexByte(l.src[l.pos+1:], '"')
		if end < 0 {
			return sqlToken{}, sqlErr(l.src, start, "unterminated delimited identifier")
		}
		v := l.src[l.pos+1 : l.pos+1+end]
		l.pos += end + 2
		return sqlToken{kind: sqlQuotedIdent, value: v, pos: start}, nil
	}

	if c >= '0' && c <= '9' {
		i := l.pos
		for i < len(l.src) && (l.src[i] >= '0' && l.src[i] <= '9') {
			i++
		}
		if i < len(l.src) && l.src[i] == '.' {
			i++
			for i < len(l.src) && (l.src[i] >= '0' && l.src[i] <= '9') {
				i++
			}
		}
		if i < len(l.src) && (l.src[i] == 'e' || l.src[i] == 'E') {
			j := i + 1
			if j < len(l.src) && (l.src[j] == '+' || l.src[j] == '-') {
				j++
			}
			for j < len(l.src) && l.src[j] >= '0' && l.src[j] <= '9' {
				i = j
				j++
			}
		}
		v := l.src[l.pos:i]
		l.pos = i
		return sqlToken{kind: sqlNumber, value: v, pos: start}, nil
	}

	if c == '_' || unicode.IsLetter(rune(c)) {
		i := l.pos
		for i < len(l.src) {
			ch := l.src[i]
			if ch == '_' || unicode.IsLetter(rune(ch)) || unicode.IsDigit(rune(ch)) {
				i++
				continue
			}
			break
		}
		v := l.src[l.pos:i]
		l.pos = i
		return sqlToken{kind: sqlIdent, value: v, pos: start}, nil
	}

	for _, s := range sqlSymbols {
		if strings.HasPrefix(l.src[l.pos:], s) {
			l.pos += len(s)
			return sqlToken{kind: sqlSym, value: s, pos: start}, nil
		}
	}
	return sqlToken{}, sqlErr(l.src, l.pos, "unexpected character %q", c)
}
