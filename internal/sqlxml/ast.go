// Package sqlxml implements the SQL/XML subset the paper exercises: a SQL
// parser and executor with XML-typed columns and the SQL/XML query
// functions XMLQuery, XMLExists, XMLTable and XMLCast (§3.2, §3.3). SQL
// scalar comparisons follow SQL semantics (trailing-blank-insensitive
// strings, SQL numeric rules); the XQuery expressions embedded in the
// query functions follow XQuery semantics — keeping the two comparison
// laws distinct is the point of several of the paper's pitfalls.
package sqlxml

import (
	"github.com/xqdb/xqdb/internal/storage"
	"github.com/xqdb/xqdb/internal/xdm"
	"github.com/xqdb/xqdb/internal/xmlindex"
	"github.com/xqdb/xqdb/internal/xquery"
)

// Statement is a parsed SQL statement.
type Statement interface{ stmtNode() }

// CreateTable is CREATE TABLE name (col type, ...).
type CreateTable struct {
	Name    string
	Columns []storage.Column
}

// CreateIndex is CREATE INDEX ... ON table(column), optionally with the
// XML index clause USING XMLPATTERN 'pattern' AS type.
type CreateIndex struct {
	Name    string
	Table   string
	Column  string
	IsXML   bool
	Pattern string
	XMLType xmlindex.Type
}

// Insert is INSERT INTO table [(cols)] VALUES (...), (...).
type Insert struct {
	Table   string
	Columns []string // nil = table order
	Rows    [][]Expr
}

// Select is a SELECT statement.
type Select struct {
	Items   []SelectItem
	From    []FromItem
	Where   Expr // nil if absent
	OrderBy []OrderItem
	// Limit caps the number of output rows (FETCH FIRST n ROWS ONLY /
	// LIMIT n); negative means no limit.
	Limit int
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Delete is DELETE FROM table [WHERE expr].
type Delete struct {
	Table string
	Where Expr // nil deletes every row
}

// DropTable is DROP TABLE name.
type DropTable struct{ Name string }

// DropIndex is DROP INDEX name.
type DropIndex struct{ Name string }

// Values is the VALUES (expr, ...) statement (one row), as in Query 6.
type Values struct {
	Exprs []Expr
}

// Explain is EXPLAIN <statement>: the engine plans the wrapped statement
// and renders the plan report instead of executing it.
type Explain struct {
	Stmt Statement
}

func (*CreateTable) stmtNode() {}
func (*CreateIndex) stmtNode() {}
func (*Insert) stmtNode()      {}
func (*Select) stmtNode()      {}
func (*Values) stmtNode()      {}
func (*Delete) stmtNode()      {}
func (*DropTable) stmtNode()   {}
func (*DropIndex) stmtNode()   {}
func (*Explain) stmtNode()     {}

// SelectItem is one select-list entry.
type SelectItem struct {
	Expr  Expr
	Alias string // "" = derived
	Star  bool   // SELECT * (Expr nil)
}

// FromItem is a table reference or an XMLTable call.
type FromItem interface{ fromNode() }

// FromTable references a stored table.
type FromTable struct {
	Table string
	Alias string // "" = table name
}

// FromXMLTable is the XMLTable table function. The first XQuery (the
// row-producer) determines the output cardinality; the per-column PATH
// expressions compute values with each row item as context (§3.2).
type FromXMLTable struct {
	RowQuery  string
	RowModule *xquery.Module
	Passing   []PassItem
	Columns   []XMLTableColumn
	Alias     string
	ColNames  []string // optional alias column list: AS t(a, b)
}

func (*FromTable) fromNode()    {}
func (*FromXMLTable) fromNode() {}

// XMLTableColumn is one COLUMNS entry of XMLTable.
type XMLTableColumn struct {
	Name       string
	Type       storage.ColumnType
	Size       int
	ByRef      bool // XML BY REF: column holds node references
	Ordinality bool // FOR ORDINALITY: the 1-based row number
	Path       string
	PathModule *xquery.Module
}

// PassItem is one PASSING binding: expr AS "var".
type PassItem struct {
	Expr Expr
	As   string
}

// Expr is a SQL scalar expression.
type Expr interface{ sqlExprNode() }

// ColRef references [table.]column.
type ColRef struct {
	Table  string // qualifier or ""
	Column string
}

// Literal is a SQL literal.
type Literal struct{ V xdm.Value }

// Null is the NULL literal.
type Null struct{}

// Compare is a SQL comparison (SQL semantics).
type Compare struct {
	Op          xdm.CompareOp
	Left, Right Expr
}

// Logical is AND/OR.
type Logical struct {
	Op          string // "and" | "or"
	Left, Right Expr
}

// Not negates a predicate.
type Not struct{ Operand Expr }

// IsNull tests for NULL (IS NULL / IS NOT NULL).
type IsNull struct {
	Operand Expr
	Negate  bool
}

// XMLQueryExpr is the scalar function XMLQuery('xq' PASSING ...): it
// returns an XML value (an XDM sequence), never eliminating rows — the
// §3.2 reason it cannot make an index eligible from the select list.
type XMLQueryExpr struct {
	Query   string
	Module  *xquery.Module
	Passing []PassItem
}

// XMLExistsExpr is the predicate XMLExists('xq' PASSING ...): true iff the
// result sequence is non-empty. A boolean-valued XQuery result is a
// non-empty sequence, so it is always true — the Query 9 pitfall.
type XMLExistsExpr struct {
	Query   string
	Module  *xquery.Module
	Passing []PassItem
}

// XMLCastExpr converts an XML value to a SQL type. The operand must be
// empty (NULL) or a singleton; a longer sequence is a type error (the
// Query 14 hazard).
type XMLCastExpr struct {
	Operand Expr
	Type    storage.ColumnType
	Size    int
}

// XMLParseExpr is XMLPARSE(DOCUMENT expr): it parses a character string
// into an XML document value.
type XMLParseExpr struct {
	Operand Expr
}

// XMLSerializeExpr is XMLSERIALIZE(expr AS varchar(n)): it renders an XML
// value as a character string.
type XMLSerializeExpr struct {
	Operand Expr
	Size    int
}

func (*ColRef) sqlExprNode()           {}
func (*Literal) sqlExprNode()          {}
func (*Null) sqlExprNode()             {}
func (*Compare) sqlExprNode()          {}
func (*Logical) sqlExprNode()          {}
func (*Not) sqlExprNode()              {}
func (*IsNull) sqlExprNode()           {}
func (*XMLQueryExpr) sqlExprNode()     {}
func (*XMLExistsExpr) sqlExprNode()    {}
func (*XMLCastExpr) sqlExprNode()      {}
func (*XMLParseExpr) sqlExprNode()     {}
func (*XMLSerializeExpr) sqlExprNode() {}
