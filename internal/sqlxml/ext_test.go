package sqlxml

import (
	"strings"
	"testing"
)

func TestOrderByAndLimit(t *testing.T) {
	e := newDB(t)
	loadOrders(t, e)
	res := mustExec(t, e, `select ordid from orders order by ordid desc`)
	if res.Rows[0][0].String() != "3" || res.Rows[2][0].String() != "1" {
		t.Fatalf("order desc = %v", res.Rows)
	}
	res = mustExec(t, e, `select ordid from orders order by ordid asc limit 2`)
	if len(res.Rows) != 2 || res.Rows[0][0].String() != "1" {
		t.Fatalf("limit = %v", res.Rows)
	}
	res = mustExec(t, e, `select ordid from orders order by ordid fetch first 1 rows only`)
	if len(res.Rows) != 1 {
		t.Fatalf("fetch first = %v", res.Rows)
	}
	// ORDER BY an XMLCast-extracted value.
	res = mustExec(t, e, `select ordid,
		XMLCast(XMLQuery('fn:max($o//lineitem/xs:double(@price))' passing orddoc as "o") as double) as top
		from orders order by top desc`)
	if res.Rows[0][1].String() != "150" {
		t.Fatalf("order by extracted value = %v", res.Rows)
	}
}

func TestOrderByNullsLast(t *testing.T) {
	e := newDB(t)
	mustExec(t, e, `insert into orders values (5, '<order/>')`)
	mustExec(t, e, `insert into orders values (1, '<order><custid>9</custid></order>')`)
	res := mustExec(t, e, `select ordid,
		XMLCast(XMLQuery('$o/order/custid' passing orddoc as "o") as integer) as n
		from orders order by n`)
	if !res.Rows[len(res.Rows)-1][1].Null {
		t.Fatalf("NULL should sort last: %v", res.Rows)
	}
}

func TestOrderByXMLValueErrors(t *testing.T) {
	e := newDB(t)
	loadOrders(t, e)
	err := execErr(t, e, `select ordid from orders order by orddoc`)
	if !strings.Contains(err.Error(), "XMLCAST") {
		t.Fatalf("err = %v", err)
	}
}

func TestDeleteWhere(t *testing.T) {
	e := newDB(t)
	loadOrders(t, e)
	mustExec(t, e, `CREATE INDEX li_price ON orders(orddoc) USING XMLPATTERN '//lineitem/@price' AS double`)
	mustExec(t, e, `delete from orders where ordid = 2`)
	res := mustExec(t, e, `select ordid from orders`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows after delete = %d", len(res.Rows))
	}
	// Index maintained: the deleted order's price is gone.
	tab, _ := e.Catalog.Table("orders")
	if got := tab.XMLIndexes("orddoc")[0].Index.Stats().Entries; got != 3 {
		t.Fatalf("index entries after delete = %d, want 3", got)
	}
	// DELETE with an XMLExists predicate.
	mustExec(t, e, `delete from orders where XMLExists('$o//lineitem[@price > 100]' passing orddoc as "o")`)
	res = mustExec(t, e, `select ordid from orders`)
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %d, want 0", len(res.Rows))
	}
	// Unconditional delete of an empty table is a no-op.
	mustExec(t, e, `delete from orders`)
}

func TestDropTableAndIndex(t *testing.T) {
	e := newDB(t)
	loadOrders(t, e)
	mustExec(t, e, `CREATE INDEX li_price ON orders(orddoc) USING XMLPATTERN '//lineitem/@price' AS double`)
	mustExec(t, e, `drop index li_price`)
	tab, _ := e.Catalog.Table("orders")
	if len(tab.XMLIndexes("")) != 0 {
		t.Fatal("index not dropped")
	}
	if err := execErr(t, e, `drop index li_price`); !strings.Contains(err.Error(), "unknown index") {
		t.Fatalf("double drop err = %v", err)
	}
	mustExec(t, e, `drop table orders`)
	if _, err := e.Catalog.Table("orders"); err == nil {
		t.Fatal("table not dropped")
	}
}

func TestRelIndexDrop(t *testing.T) {
	e := newDB(t)
	mustExec(t, e, `create index p_id on products(id)`)
	mustExec(t, e, `drop index p_id`)
	tab, _ := e.Catalog.Table("products")
	if len(tab.RelIndexes("")) != 0 {
		t.Fatal("relational index not dropped")
	}
}
