package sqlxml

import (
	"strconv"
	"strings"

	"github.com/xqdb/xqdb/internal/storage"
	"github.com/xqdb/xqdb/internal/xdm"
	"github.com/xqdb/xqdb/internal/xmlindex"
	"github.com/xqdb/xqdb/internal/xquery"
)

// sqlParser is a recursive-descent parser with one token of lookahead.
type sqlParser struct {
	lx  *sqlLexer
	tok sqlToken
}

// Parse parses one SQL statement (a trailing semicolon is allowed).
func Parse(src string) (Statement, error) {
	p := &sqlParser{lx: &sqlLexer{src: src}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	if p.isSym(";") {
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if p.tok.kind != sqlEOF {
		return nil, p.errf("unexpected %q after statement", p.tok.value)
	}
	return stmt, nil
}

func (p *sqlParser) errf(format string, args ...any) error {
	return sqlErr(p.lx.src, p.tok.pos, format, args...)
}

func (p *sqlParser) advance() error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *sqlParser) peek() sqlToken {
	save := p.lx.pos
	t, err := p.lx.next()
	p.lx.pos = save
	if err != nil {
		return sqlToken{kind: sqlEOF}
	}
	return t
}

// isKw matches an unquoted identifier case-insensitively.
func (p *sqlParser) isKw(kw string) bool {
	return p.tok.kind == sqlIdent && strings.EqualFold(p.tok.value, kw)
}

func (p *sqlParser) isSym(s string) bool { return p.tok.kind == sqlSym && p.tok.value == s }

func (p *sqlParser) expectKw(kw string) error {
	if !p.isKw(kw) {
		return p.errf("expected %s, found %q", strings.ToUpper(kw), p.tok.value)
	}
	return p.advance()
}

func (p *sqlParser) expectSym(s string) error {
	if !p.isSym(s) {
		return p.errf("expected %q, found %q", s, p.tok.value)
	}
	return p.advance()
}

// ident consumes an identifier (regular or delimited) and returns its
// name (regular identifiers fold to lower case).
func (p *sqlParser) ident() (string, error) {
	switch p.tok.kind {
	case sqlIdent:
		v := strings.ToLower(p.tok.value)
		return v, p.advance()
	case sqlQuotedIdent:
		v := p.tok.value
		return v, p.advance()
	}
	return "", p.errf("expected identifier, found %q", p.tok.value)
}

func (p *sqlParser) stringLit() (string, error) {
	if p.tok.kind != sqlString {
		return "", p.errf("expected string literal, found %q", p.tok.value)
	}
	v := p.tok.value
	return v, p.advance()
}

func (p *sqlParser) parseStatement() (Statement, error) {
	switch {
	case p.isKw("explain"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		if _, ok := inner.(*Explain); ok {
			return nil, p.errf("EXPLAIN cannot be nested")
		}
		return &Explain{Stmt: inner}, nil
	case p.isKw("create"):
		return p.parseCreate()
	case p.isKw("insert"):
		return p.parseInsert()
	case p.isKw("select"):
		return p.parseSelect()
	case p.isKw("delete"):
		return p.parseDelete()
	case p.isKw("drop"):
		return p.parseDrop()
	case p.isKw("values"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectSym("("); err != nil {
			return nil, err
		}
		var exprs []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			exprs = append(exprs, e)
			if !p.isSym(",") {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		return &Values{Exprs: exprs}, nil
	}
	return nil, p.errf("expected a statement, found %q", p.tok.value)
}

func (p *sqlParser) parseCreate() (Statement, error) {
	if err := p.advance(); err != nil { // CREATE
		return nil, err
	}
	switch {
	case p.isKw("table"):
		return p.parseCreateTable()
	case p.isKw("index") || p.isKw("unique"):
		return p.parseCreateIndex()
	}
	return nil, p.errf("expected TABLE or INDEX after CREATE")
}

func (p *sqlParser) parseCreateTable() (Statement, error) {
	if err := p.advance(); err != nil { // TABLE
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	ct := &CreateTable{Name: name}
	for {
		colName, err := p.ident()
		if err != nil {
			return nil, err
		}
		col, err := p.parseColumnType(colName)
		if err != nil {
			return nil, err
		}
		ct.Columns = append(ct.Columns, col)
		if !p.isSym(",") {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	return ct, nil
}

func (p *sqlParser) parseColumnType(colName string) (storage.Column, error) {
	var col storage.Column
	col.Name = colName
	tn, err := p.ident()
	if err != nil {
		return col, err
	}
	switch tn {
	case "int":
		tn = "integer"
	case "dec", "numeric":
		tn = "decimal"
	}
	t, ok := storage.ColumnTypeByName(tn)
	if !ok {
		return col, p.errf("unknown column type %q", tn)
	}
	col.Type = t
	if p.isSym("(") {
		if err := p.advance(); err != nil {
			return col, err
		}
		if p.tok.kind != sqlNumber {
			return col, p.errf("expected length, found %q", p.tok.value)
		}
		n, err := strconv.Atoi(p.tok.value)
		if err != nil {
			return col, p.errf("bad length %q", p.tok.value)
		}
		col.Size = n
		if err := p.advance(); err != nil {
			return col, err
		}
		if p.isSym(",") { // DECIMAL(6,3): scale parsed and ignored
			if err := p.advance(); err != nil {
				return col, err
			}
			if p.tok.kind != sqlNumber {
				return col, p.errf("expected scale")
			}
			if err := p.advance(); err != nil {
				return col, err
			}
		}
		if err := p.expectSym(")"); err != nil {
			return col, err
		}
	}
	return col, nil
}

func (p *sqlParser) parseCreateIndex() (Statement, error) {
	if p.isKw("unique") {
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if err := p.expectKw("index"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("on"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	ci := &CreateIndex{Name: name, Table: table}
	// Accept both orders(orddoc) and the paper's orders.orddoc form.
	switch {
	case p.isSym("("):
		if err := p.advance(); err != nil {
			return nil, err
		}
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		ci.Column = col
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
	case p.isSym("."):
		if err := p.advance(); err != nil {
			return nil, err
		}
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		ci.Column = col
	default:
		return nil, p.errf("expected (column) after table name")
	}
	if p.isKw("using") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKw("xmlpattern"); err != nil {
			return nil, err
		}
		pat, err := p.stringLit()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("as"); err != nil {
			return nil, err
		}
		tn, err := p.ident()
		if err != nil {
			return nil, err
		}
		t, ok := xmlindex.TypeByName(tn)
		if !ok {
			return nil, p.errf("unknown XML index type %q (want varchar, double, date, or timestamp)", tn)
		}
		// An optional varchar length is accepted and ignored.
		if p.isSym("(") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.kind != sqlNumber {
				return nil, p.errf("expected length")
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
		}
		ci.IsXML = true
		ci.Pattern = pat
		ci.XMLType = t
	}
	return ci, nil
}

func (p *sqlParser) parseInsert() (Statement, error) {
	if err := p.advance(); err != nil { // INSERT
		return nil, err
	}
	if err := p.expectKw("into"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: table}
	if p.isSym("(") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, col)
			if !p.isSym(",") {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKw("values"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectSym("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.isSym(",") {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.isSym(",") {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	return ins, nil
}

func (p *sqlParser) parseSelect() (Statement, error) {
	if err := p.advance(); err != nil { // SELECT
		return nil, err
	}
	sel := &Select{}
	for {
		if p.isSym("*") {
			sel.Items = append(sel.Items, SelectItem{Star: true})
			if err := p.advance(); err != nil {
				return nil, err
			}
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.isKw("as") {
				if err := p.advance(); err != nil {
					return nil, err
				}
				a, err := p.ident()
				if err != nil {
					return nil, err
				}
				item.Alias = a
			}
			sel.Items = append(sel.Items, item)
		}
		if !p.isSym(",") {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if err := p.expectKw("from"); err != nil {
		return nil, err
	}
	for {
		fi, err := p.parseFromItem()
		if err != nil {
			return nil, err
		}
		sel.From = append(sel.From, fi)
		if !p.isSym(",") {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if p.isKw("where") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}
	sel.Limit = -1
	if p.isKw("order") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		for {
			item := OrderItem{}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item.Expr = e
			switch {
			case p.isKw("desc") || p.isKw("descending"):
				item.Desc = true
				if err := p.advance(); err != nil {
					return nil, err
				}
			case p.isKw("asc") || p.isKw("ascending"):
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.isSym(",") {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	// LIMIT n, or the standard FETCH FIRST n ROWS ONLY.
	switch {
	case p.isKw("limit"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		n, err := p.intLit()
		if err != nil {
			return nil, err
		}
		sel.Limit = n
	case p.isKw("fetch"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKw("first"); err != nil {
			return nil, err
		}
		n, err := p.intLit()
		if err != nil {
			return nil, err
		}
		sel.Limit = n
		if p.isKw("rows") || p.isKw("row") {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if p.isKw("only") {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	return sel, nil
}

func (p *sqlParser) intLit() (int, error) {
	if p.tok.kind != sqlNumber {
		return 0, p.errf("expected a number, found %q", p.tok.value)
	}
	n, err := strconv.Atoi(p.tok.value)
	if err != nil {
		return 0, p.errf("bad number %q", p.tok.value)
	}
	return n, p.advance()
}

func (p *sqlParser) parseDelete() (Statement, error) {
	if err := p.advance(); err != nil { // DELETE
		return nil, err
	}
	if err := p.expectKw("from"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	d := &Delete{Table: table}
	if p.isKw("where") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Where = w
	}
	return d, nil
}

func (p *sqlParser) parseDrop() (Statement, error) {
	if err := p.advance(); err != nil { // DROP
		return nil, err
	}
	switch {
	case p.isKw("table"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DropTable{Name: name}, nil
	case p.isKw("index"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DropIndex{Name: name}, nil
	}
	return nil, p.errf("expected TABLE or INDEX after DROP")
}

func (p *sqlParser) parseFromItem() (FromItem, error) {
	if p.isKw("xmltable") {
		return p.parseXMLTable()
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	ft := &FromTable{Table: name, Alias: name}
	if p.isKw("as") {
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if p.tok.kind == sqlIdent && !p.isFromTerminator() {
		alias, err := p.ident()
		if err != nil {
			return nil, err
		}
		ft.Alias = alias
	}
	return ft, nil
}

// isFromTerminator reports whether the current identifier is a clause
// keyword rather than a table alias.
func (p *sqlParser) isFromTerminator() bool {
	for _, kw := range []string{"where", "group", "order", "having", "union", "limit"} {
		if p.isKw(kw) {
			return true
		}
	}
	return false
}

func (p *sqlParser) parseXMLTable() (FromItem, error) {
	if err := p.advance(); err != nil { // XMLTABLE
		return nil, err
	}
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	rowQuery, err := p.stringLit()
	if err != nil {
		return nil, err
	}
	xt := &FromXMLTable{RowQuery: rowQuery}
	xt.RowModule, err = xquery.Parse(rowQuery)
	if err != nil {
		return nil, p.errf("XMLTable row expression: %v", err)
	}
	if p.isKw("passing") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		xt.Passing, err = p.parsePassing()
		if err != nil {
			return nil, err
		}
	}
	if p.isKw("columns") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		for {
			col, err := p.parseXMLTableColumn()
			if err != nil {
				return nil, err
			}
			xt.Columns = append(xt.Columns, col)
			if !p.isSym(",") {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	if p.isKw("as") {
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if p.tok.kind == sqlIdent || p.tok.kind == sqlQuotedIdent {
		alias, err := p.ident()
		if err != nil {
			return nil, err
		}
		xt.Alias = alias
		if p.isSym("(") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			for {
				cn, err := p.ident()
				if err != nil {
					return nil, err
				}
				xt.ColNames = append(xt.ColNames, cn)
				if !p.isSym(",") {
					break
				}
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
		}
	}
	return xt, nil
}

func (p *sqlParser) parseXMLTableColumn() (XMLTableColumn, error) {
	var col XMLTableColumn
	name, err := p.ident()
	if err != nil {
		return col, err
	}
	col.Name = name
	if p.isKw("for") {
		if err := p.advance(); err != nil {
			return col, err
		}
		if err := p.expectKw("ordinality"); err != nil {
			return col, err
		}
		col.Ordinality = true
		col.Type = storage.Integer
		return col, nil
	}
	if p.isKw("xml") {
		if err := p.advance(); err != nil {
			return col, err
		}
		col.Type = storage.XML
		if p.isKw("by") {
			if err := p.advance(); err != nil {
				return col, err
			}
			switch {
			case p.isKw("ref"):
				col.ByRef = true
			case p.isKw("value"):
			default:
				return col, p.errf("expected REF or VALUE after BY")
			}
			if err := p.advance(); err != nil {
				return col, err
			}
		}
	} else {
		c, err := p.parseColumnType(name)
		if err != nil {
			return col, err
		}
		col.Type = c.Type
		col.Size = c.Size
	}
	if err := p.expectKw("path"); err != nil {
		return col, err
	}
	path, err := p.stringLit()
	if err != nil {
		return col, err
	}
	col.Path = path
	col.PathModule, err = xquery.Parse(path)
	if err != nil {
		return col, p.errf("XMLTable column %s path: %v", name, err)
	}
	return col, nil
}

func (p *sqlParser) parsePassing() ([]PassItem, error) {
	var items []PassItem
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("as"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		items = append(items, PassItem{Expr: e, As: name})
		if !p.isSym(",") {
			return items, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
}

// parseExpr parses OR-expressions.
func (p *sqlParser) parseExpr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.isKw("or") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &Logical{Op: "or", Left: left, Right: right}
	}
	return left, nil
}

func (p *sqlParser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.isKw("and") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &Logical{Op: "and", Left: left, Right: right}
	}
	return left, nil
}

func (p *sqlParser) parseNot() (Expr, error) {
	if p.isKw("not") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Not{Operand: e}, nil
	}
	return p.parseComparison()
}

var sqlCompareOps = map[string]xdm.CompareOp{
	"=": xdm.OpEq, "<>": xdm.OpNe, "!=": xdm.OpNe,
	"<": xdm.OpLt, "<=": xdm.OpLe, ">": xdm.OpGt, ">=": xdm.OpGe,
}

func (p *sqlParser) parseComparison() (Expr, error) {
	left, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == sqlSym {
		if op, ok := sqlCompareOps[p.tok.value]; ok {
			if err := p.advance(); err != nil {
				return nil, err
			}
			right, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			return &Compare{Op: op, Left: left, Right: right}, nil
		}
	}
	if p.isKw("is") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		neg := false
		if p.isKw("not") {
			neg = true
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if err := p.expectKw("null"); err != nil {
			return nil, err
		}
		return &IsNull{Operand: left, Negate: neg}, nil
	}
	return left, nil
}

func (p *sqlParser) parsePrimary() (Expr, error) {
	switch p.tok.kind {
	case sqlNumber:
		v := p.tok.value
		if err := p.advance(); err != nil {
			return nil, err
		}
		if !strings.ContainsAny(v, ".eE") {
			i, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, p.errf("bad integer %q", v)
			}
			return &Literal{V: xdm.NewInteger(i)}, nil
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return nil, p.errf("bad number %q", v)
		}
		return &Literal{V: xdm.NewDouble(f)}, nil
	case sqlString:
		v := p.tok.value
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Literal{V: xdm.NewString(v)}, nil
	}
	if p.isSym("(") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	switch {
	case p.isKw("null"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Null{}, nil
	case p.isKw("xmlquery"):
		return p.parseXMLFunc(false)
	case p.isKw("xmlexists"):
		return p.parseXMLFunc(true)
	case p.isKw("xmlcast"):
		return p.parseXMLCast()
	case p.isKw("xmlparse"):
		return p.parseXMLParse()
	case p.isKw("xmlserialize"):
		return p.parseXMLSerialize()
	}
	if p.tok.kind == sqlIdent || p.tok.kind == sqlQuotedIdent {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		cr := &ColRef{Column: name}
		if p.isSym(".") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			cr.Table = name
			cr.Column = col
		}
		return cr, nil
	}
	return nil, p.errf("unexpected token %q in expression", p.tok.value)
}

func (p *sqlParser) parseXMLFunc(exists bool) (Expr, error) {
	if err := p.advance(); err != nil { // XMLQUERY / XMLEXISTS
		return nil, err
	}
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	query, err := p.stringLit()
	if err != nil {
		return nil, err
	}
	mod, err := xquery.Parse(query)
	if err != nil {
		return nil, p.errf("embedded XQuery: %v", err)
	}
	var passing []PassItem
	if p.isKw("passing") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		passing, err = p.parsePassing()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	if exists {
		return &XMLExistsExpr{Query: query, Module: mod, Passing: passing}, nil
	}
	return &XMLQueryExpr{Query: query, Module: mod, Passing: passing}, nil
}

func (p *sqlParser) parseXMLParse() (Expr, error) {
	if err := p.advance(); err != nil { // XMLPARSE
		return nil, err
	}
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	if err := p.expectKw("document"); err != nil {
		return nil, err
	}
	operand, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	return &XMLParseExpr{Operand: operand}, nil
}

func (p *sqlParser) parseXMLSerialize() (Expr, error) {
	if err := p.advance(); err != nil { // XMLSERIALIZE
		return nil, err
	}
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	operand, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("as"); err != nil {
		return nil, err
	}
	tn, err := p.ident()
	if err != nil {
		return nil, err
	}
	if tn != "varchar" && tn != "clob" {
		return nil, p.errf("XMLSERIALIZE target must be varchar, got %q", tn)
	}
	xs := &XMLSerializeExpr{}
	if p.isSym("(") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		n, err := p.intLit()
		if err != nil {
			return nil, err
		}
		xs.Size = n
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	xs.Operand = operand
	return xs, nil
}

func (p *sqlParser) parseXMLCast() (Expr, error) {
	if err := p.advance(); err != nil { // XMLCAST
		return nil, err
	}
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	operand, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("as"); err != nil {
		return nil, err
	}
	tn, err := p.ident()
	if err != nil {
		return nil, err
	}
	switch tn {
	case "int":
		tn = "integer"
	case "dec", "numeric":
		tn = "decimal"
	}
	t, ok := storage.ColumnTypeByName(tn)
	if !ok {
		return nil, p.errf("unknown SQL type %q in XMLCAST", tn)
	}
	xc := &XMLCastExpr{Operand: operand, Type: t}
	if p.isSym("(") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != sqlNumber {
			return nil, p.errf("expected length")
		}
		n, _ := strconv.Atoi(p.tok.value)
		xc.Size = n
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.isSym(",") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.kind != sqlNumber {
				return nil, p.errf("expected scale")
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	return xc, nil
}
