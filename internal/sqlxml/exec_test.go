package sqlxml

import (
	"strings"
	"testing"

	"github.com/xqdb/xqdb/internal/postings"
	"github.com/xqdb/xqdb/internal/storage"
)

// newDB builds the paper's schema (§2.2) with the executor wired to the
// catalog's collection resolver.
func newDB(t *testing.T) *Executor {
	t.Helper()
	cat := storage.NewCatalog()
	e := &Executor{Catalog: cat, Coll: cat}
	mustExec(t, e, `create table customer (cid integer, cdoc XML)`)
	mustExec(t, e, `create table orders (ordid integer, orddoc XML)`)
	mustExec(t, e, `create table products (id varchar(13), name varchar(32))`)
	return e
}

func mustExec(t *testing.T, e *Executor, sql string) *Result {
	t.Helper()
	stmt, err := Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	res, err := e.Exec(stmt)
	if err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
	return res
}

func execErr(t *testing.T, e *Executor, sql string) error {
	t.Helper()
	stmt, err := Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	_, err = e.Exec(stmt)
	if err == nil {
		t.Fatalf("exec %q: expected error", sql)
	}
	return err
}

// loadOrders inserts the standard three-order corpus.
func loadOrders(t *testing.T, e *Executor) {
	t.Helper()
	mustExec(t, e, `insert into orders values
		(1, '<order date="2002-01-01"><lineitem price="150"><product><id>17</id></product></lineitem><custid>7</custid></order>'),
		(2, '<order date="2002-01-02"><lineitem price="99.50"><product><id>18</id></product></lineitem><custid>8</custid></order>'),
		(3, '<order date="2002-01-03"><lineitem price="120"><product><id>17</id></product></lineitem><lineitem price="80"><product><id>19</id></product></lineitem><custid>9</custid></order>')`)
}

func TestCreateInsertSelect(t *testing.T) {
	e := newDB(t)
	loadOrders(t, e)
	res := mustExec(t, e, `select ordid from orders where ordid > 1`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Columns[0] != "ordid" {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestQuery5XMLQueryInSelect(t *testing.T) {
	// Paper Query 5: one row per order, empty XML for non-qualifying.
	e := newDB(t)
	loadOrders(t, e)
	res := mustExec(t, e, `SELECT XMLQuery('$order//lineitem[@price > 100]' passing orddoc as "order") FROM orders`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (one per order)", len(res.Rows))
	}
	empties := 0
	for _, r := range res.Rows {
		if len(r[0].XML) == 0 {
			empties++
		}
	}
	if empties != 1 {
		t.Fatalf("empty results = %d, want 1", empties)
	}
}

func TestQuery6ValuesSingleRow(t *testing.T) {
	// Paper Query 6: one row containing every qualifying lineitem.
	e := newDB(t)
	loadOrders(t, e)
	res := mustExec(t, e, `VALUES (XMLQuery('db2-fn:xmlcolumn("ORDERS.ORDDOC")//lineitem[@price > 100]'))`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
	if n := len(res.Rows[0][0].XML); n != 2 {
		t.Fatalf("items in single row = %d, want 2", n)
	}
}

func TestQuery8XMLExistsFilters(t *testing.T) {
	// Paper Query 8: XMLExists in WHERE eliminates rows.
	e := newDB(t)
	loadOrders(t, e)
	res := mustExec(t, e, `SELECT ordid, orddoc FROM orders
		WHERE XMLExists('$order//lineitem[@price > 100]' passing orddoc as "order")`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	for _, r := range res.Rows {
		if !strings.Contains(r[1].String(), "<order") {
			t.Errorf("row = %v", r[1])
		}
	}
}

func TestQuery9BooleanXMLExistsPitfall(t *testing.T) {
	// Paper Query 9: a boolean XQuery result is a non-empty sequence, so
	// XMLExists never filters — all rows come back.
	e := newDB(t)
	loadOrders(t, e)
	res := mustExec(t, e, `SELECT ordid, orddoc FROM orders
		WHERE XMLExists('$order//lineitem/@price > 100' passing orddoc as "order")`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (the pitfall!)", len(res.Rows))
	}
}

func TestQuery10ExistsPlusQuery(t *testing.T) {
	e := newDB(t)
	loadOrders(t, e)
	res := mustExec(t, e, `SELECT ordid,
		XMLQuery('$order//lineitem[@price > 100]' passing orddoc as "order")
		FROM orders
		WHERE XMLExists('$order//lineitem[@price > 100]' passing orddoc as "order")`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
}

func TestQuery11XMLTable(t *testing.T) {
	// Paper Query 11: one output row per qualifying lineitem.
	e := newDB(t)
	loadOrders(t, e)
	res := mustExec(t, e, `SELECT o.ordid, t.lineitem
		FROM orders o, XMLTable('$order//lineitem[@price > 100]'
			passing o.orddoc as "order"
			COLUMNS "lineitem" XML BY REF PATH '.') as t(lineitem)`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	for _, r := range res.Rows {
		if !strings.Contains(r[1].String(), "<lineitem") {
			t.Errorf("row %v", r)
		}
	}
}

func TestQuery12XMLTableColumnPredicate(t *testing.T) {
	// Paper Query 12: the price predicate sits in a column expression;
	// every lineitem still produces a row, with NULL price when the
	// predicate fails.
	e := newDB(t)
	loadOrders(t, e)
	res := mustExec(t, e, `SELECT o.ordid, t.lineitem, t.price
		FROM orders o, XMLTable('$order//lineitem'
			passing o.orddoc as "order"
			COLUMNS "lineitem" XML BY REF PATH '.',
			        "price" DECIMAL(6,3) PATH '@price[. > 100]') as t(lineitem, price)`)
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 (one per lineitem)", len(res.Rows))
	}
	nulls := 0
	for _, r := range res.Rows {
		if r[2].Null {
			nulls++
		}
	}
	if nulls != 2 {
		t.Fatalf("NULL prices = %d, want 2", nulls)
	}
}

func TestQuery13JoinInXQuery(t *testing.T) {
	e := newDB(t)
	loadOrders(t, e)
	mustExec(t, e, `insert into products values ('17', 'widget'), ('18', 'gadget'), ('99', 'unused')`)
	res := mustExec(t, e, `SELECT p.name,
		XMLQuery('$order//lineitem' passing orddoc as "order")
		FROM products p, orders o
		WHERE XMLExists('$order//lineitem/product[id eq $pid]'
			passing o.orddoc as "order", p.id as "pid")`)
	// widget joins orders 1 and 3; gadget joins order 2.
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
}

func TestQuery14XMLCastHazards(t *testing.T) {
	e := newDB(t)
	mustExec(t, e, `insert into products values ('17', 'widget')`)
	// A multi-lineitem order makes the XMLCast operand non-singleton:
	// Query 14 fails where Query 13 succeeds.
	mustExec(t, e, `insert into orders values
		(1, '<order><lineitem><product><id>17</id></product></lineitem><lineitem><product><id>18</id></product></lineitem></order>')`)
	err := execErr(t, e, `SELECT p.name FROM products p, orders o
		WHERE p.id = XMLCast(XMLQuery('$order//lineitem/product/id'
			passing o.orddoc as "order") as VARCHAR(13))`)
	if !strings.Contains(err.Error(), "exactly one") {
		t.Errorf("err = %v", err)
	}
	// Query 13's formulation succeeds on the same data.
	res := mustExec(t, e, `SELECT p.name FROM products p, orders o
		WHERE XMLExists('$order//lineitem/product[id eq $pid]'
			passing o.orddoc as "order", p.id as "pid")`)
	if len(res.Rows) != 1 {
		t.Fatalf("query 13 rows = %d", len(res.Rows))
	}
}

func TestQuery14VarcharOverflow(t *testing.T) {
	e := newDB(t)
	mustExec(t, e, `insert into orders values (1, '<order><lineitem><product><id>12345678901234</id></product></lineitem></order>')`)
	err := execErr(t, e, `SELECT XMLCast(XMLQuery('$order//lineitem/product/id'
			passing orddoc as "order") as VARCHAR(13)) FROM orders`)
	if !strings.Contains(err.Error(), "varchar(13)") {
		t.Errorf("err = %v", err)
	}
}

func TestQuery15SQLSideJoin(t *testing.T) {
	e := newDB(t)
	mustExec(t, e, `insert into orders values (1, '<order><custid>7</custid><lineitem price="5"/></order>')`)
	mustExec(t, e, `insert into customer values (100, '<customer><id>7.0</id><name>Ada</name></customer>')`)
	res := mustExec(t, e, `SELECT XMLQuery('$cust/customer/name' passing c.cdoc as "cust")
		FROM orders o, customer c
		WHERE XMLCast(XMLQuery('$order/order/custid' passing o.orddoc as "order") as DOUBLE)
		    = XMLCast(XMLQuery('$cust/customer/id' passing c.cdoc as "cust") as DOUBLE)`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1 (7 = 7.0 numerically)", len(res.Rows))
	}
}

func TestQuery16XQuerySideJoin(t *testing.T) {
	e := newDB(t)
	mustExec(t, e, `insert into orders values (1, '<order><custid>7</custid><lineitem price="5"/></order>')`)
	mustExec(t, e, `insert into customer values (100, '<customer><id>7.0</id><name>Ada</name></customer>')`)
	res := mustExec(t, e, `SELECT c.cid FROM orders o, customer c
		WHERE XMLExists('$order/order[custid/xs:double(.) = $cust/customer/id/xs:double(.)]'
			passing o.orddoc as "order", c.cdoc as "cust")`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
}

func TestSQLTrailingBlankSemantics(t *testing.T) {
	// §3.3: SQL ignores trailing blanks; XQuery does not.
	e := newDB(t)
	mustExec(t, e, `insert into products values ('A ', 'padded')`)
	res := mustExec(t, e, `select name from products where id = 'A'`)
	if len(res.Rows) != 1 {
		t.Fatalf("SQL padded compare rows = %d, want 1", len(res.Rows))
	}
	mustExec(t, e, `insert into orders values (1, '<order><code>A </code></order>')`)
	res = mustExec(t, e, `select ordid from orders
		where XMLExists('$o/order[code eq "A"]' passing orddoc as "o")`)
	if len(res.Rows) != 0 {
		t.Fatalf("XQuery padded compare rows = %d, want 0", len(res.Rows))
	}
}

func TestNullHandling(t *testing.T) {
	e := newDB(t)
	mustExec(t, e, `insert into orders (ordid) values (1)`)
	res := mustExec(t, e, `select ordid from orders where orddoc is null`)
	if len(res.Rows) != 1 {
		t.Fatalf("is null rows = %d", len(res.Rows))
	}
	res = mustExec(t, e, `select ordid from orders where orddoc is not null`)
	if len(res.Rows) != 0 {
		t.Fatalf("is not null rows = %d", len(res.Rows))
	}
	// Comparison with NULL is unknown → filtered.
	res = mustExec(t, e, `select ordid from orders where ordid = null`)
	if len(res.Rows) != 0 {
		t.Fatalf("null compare rows = %d", len(res.Rows))
	}
}

func TestSelectStarAndAliases(t *testing.T) {
	e := newDB(t)
	loadOrders(t, e)
	res := mustExec(t, e, `select * from orders where ordid = 1`)
	if len(res.Columns) != 2 || res.Columns[0] != "ordid" {
		t.Fatalf("columns = %v", res.Columns)
	}
	res = mustExec(t, e, `select ordid as n from orders where ordid = 1`)
	if res.Columns[0] != "n" {
		t.Fatalf("alias = %v", res.Columns)
	}
}

func TestPrefilterReducesScan(t *testing.T) {
	e := newDB(t)
	loadOrders(t, e)
	stmt, err := Parse(`SELECT ordid FROM orders
		WHERE XMLExists('$order//lineitem[@price > 100]' passing orddoc as "order")`)
	if err != nil {
		t.Fatal(err)
	}
	full, err := e.Exec(stmt)
	if err != nil {
		t.Fatal(err)
	}
	filtered, err := e.ExecFiltered(stmt, Prefilter{0: postings.List{1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Rows) != len(filtered.Rows) {
		t.Fatalf("prefilter changed results: %d vs %d", len(full.Rows), len(filtered.Rows))
	}
	if filtered.RowsScanned >= full.RowsScanned {
		t.Fatalf("prefilter did not reduce scan: %d vs %d", filtered.RowsScanned, full.RowsScanned)
	}
}

func TestCreateIndexStatements(t *testing.T) {
	e := newDB(t)
	loadOrders(t, e)
	mustExec(t, e, `CREATE INDEX li_price ON orders(orddoc) USING XMLPATTERN '//lineitem/@price' AS double`)
	tab, _ := e.Catalog.Table("orders")
	xis := tab.XMLIndexes("orddoc")
	if len(xis) != 1 || xis[0].Index.Stats().Entries != 4 {
		t.Fatalf("index entries = %+v", xis)
	}
	mustExec(t, e, `CREATE INDEX p_id ON products(id)`)
	ptab, _ := e.Catalog.Table("products")
	if len(ptab.RelIndexes("id")) != 1 {
		t.Fatal("relational index missing")
	}
	// The paper's dotted form: CREATE INDEX PRICE_TEXT ON orders.orddoc.
	mustExec(t, e, `CREATE INDEX PRICE_TEXT ON orders.orddoc USING XMLPATTERN '//price' AS varchar`)
	if len(tab.XMLIndexes("orddoc")) != 2 {
		t.Fatal("dotted-form index missing")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``, `select`, `select from`, `select a from`, `create table t`,
		`insert into t values`, `select a from t where`,
		`create index i on t(c) using xmlpattern '//a' as varchar2`,
		`select xmlquery('$$bad') from t`,
		`values (1,`, `select a from t where a <`,
		`create table t (a sometype)`,
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}

func TestXMLTableScalarColumnError(t *testing.T) {
	e := newDB(t)
	mustExec(t, e, `insert into orders values (1, '<order><lineitem><id>1</id><id>2</id></lineitem></order>')`)
	err := execErr(t, e, `SELECT t.x FROM orders o, XMLTable('$o//lineitem'
		passing o.orddoc as "o"
		COLUMNS "x" INTEGER PATH 'id') as t(x)`)
	if !strings.Contains(err.Error(), "exactly one") {
		t.Errorf("err = %v", err)
	}
}
