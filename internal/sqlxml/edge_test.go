package sqlxml

import (
	"fmt"
	"strings"
	"testing"

	"github.com/xqdb/xqdb/internal/xdm"
)

func TestBooleanExpressionsInWhere(t *testing.T) {
	e := newDB(t)
	loadOrders(t, e)
	res := mustExec(t, e, `select ordid from orders where ordid = 1 or ordid = 3`)
	if len(res.Rows) != 2 {
		t.Fatalf("or rows = %d", len(res.Rows))
	}
	res = mustExec(t, e, `select ordid from orders where ordid > 1 and ordid < 3`)
	if len(res.Rows) != 1 {
		t.Fatalf("and rows = %d", len(res.Rows))
	}
	res = mustExec(t, e, `select ordid from orders where not ordid = 2`)
	if len(res.Rows) != 2 {
		t.Fatalf("not rows = %d", len(res.Rows))
	}
	res = mustExec(t, e, `select ordid from orders where (ordid = 1 or ordid = 2) and not ordid = 2`)
	if len(res.Rows) != 1 {
		t.Fatalf("mixed rows = %d", len(res.Rows))
	}
	// NOT over unknown stays unknown → filtered.
	mustExec(t, e, `insert into orders (ordid) values (9)`)
	res = mustExec(t, e, `select ordid from orders where not XMLCast(XMLQuery('$o/order/custid' passing orddoc as "o") as integer) = 7`)
	for _, row := range res.Rows {
		if row[0].String() == "9" {
			t.Fatal("NOT unknown must filter the row")
		}
	}
}

func TestComparisonOperatorForms(t *testing.T) {
	e := newDB(t)
	loadOrders(t, e)
	for _, q := range []string{
		`select ordid from orders where ordid <> 1`,
		`select ordid from orders where ordid != 1`,
	} {
		res := mustExec(t, e, q)
		if len(res.Rows) != 2 {
			t.Fatalf("%s rows = %d", q, len(res.Rows))
		}
	}
	res := mustExec(t, e, `select ordid from orders where ordid >= 2`)
	if len(res.Rows) != 2 {
		t.Fatalf(">= rows = %d", len(res.Rows))
	}
	res = mustExec(t, e, `select ordid from orders where ordid <= 2`)
	if len(res.Rows) != 2 {
		t.Fatalf("<= rows = %d", len(res.Rows))
	}
}

func TestSelectBooleanExpression(t *testing.T) {
	e := newDB(t)
	loadOrders(t, e)
	res := mustExec(t, e, `select ordid = 1 from orders order by ordid limit 1`)
	if res.Rows[0][0].V.T != xdm.Boolean || !res.Rows[0][0].V.B {
		t.Fatalf("boolean select = %+v", res.Rows[0][0])
	}
	// XMLExists as a select item renders a boolean.
	res = mustExec(t, e, `select XMLExists('$o//lineitem[@price > 100]' passing orddoc as "o") as hit
		from orders order by ordid`)
	if res.Rows[0][0].String() != "true" || res.Rows[1][0].String() != "false" {
		t.Fatalf("exists select = %v", res.Rows)
	}
}

func TestInsertWithNullsAndExprs(t *testing.T) {
	e := newDB(t)
	mustExec(t, e, `insert into orders values (1, null)`)
	res := mustExec(t, e, `select ordid from orders where orddoc is null`)
	if len(res.Rows) != 1 {
		t.Fatalf("null insert rows = %d", len(res.Rows))
	}
}

func TestParenthesizedFromAliases(t *testing.T) {
	e := newDB(t)
	loadOrders(t, e)
	res := mustExec(t, e, `select a.ordid from orders as a where a.ordid = 1`)
	if len(res.Rows) != 1 {
		t.Fatalf("aliased rows = %d", len(res.Rows))
	}
	// Self-join with two aliases.
	res = mustExec(t, e, `select a.ordid, b.ordid from orders a, orders b where a.ordid = b.ordid`)
	if len(res.Rows) != 3 {
		t.Fatalf("self-join rows = %d", len(res.Rows))
	}
	// Ambiguous unqualified reference errors.
	err := execErr(t, e, `select ordid from orders a, orders b`)
	if !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("err = %v", err)
	}
}

func TestXMLCastVariants(t *testing.T) {
	e := newDB(t)
	mustExec(t, e, `insert into orders values (1, '<order><custid>7</custid><d>2002-03-04</d></order>')`)
	cases := []struct {
		q, want string
	}{
		{`select XMLCast(XMLQuery('$o/order/custid' passing orddoc as "o") as double) from orders`, "7"},
		{`select XMLCast(XMLQuery('$o/order/custid' passing orddoc as "o") as varchar(10)) from orders`, "7"},
		{`select XMLCast(XMLQuery('$o/order/d' passing orddoc as "o") as date) from orders`, "2002-03-04"},
		{`select XMLCast(XMLQuery('$o/order/nosuch' passing orddoc as "o") as integer) from orders`, "NULL"},
		{`select XMLCast(1 as varchar(5)) from orders`, "1"},
	}
	for _, c := range cases {
		res := mustExec(t, e, c.q)
		if got := res.Rows[0][0].String(); got != c.want {
			t.Errorf("%s = %q, want %q", c.q, got, c.want)
		}
	}
	err := execErr(t, e, `select XMLCast(XMLQuery('$o/order/custid' passing orddoc as "o") as decimal(3,1)) from orders where 1 = 2 or XMLCast('x' as integer) = 1`)
	if !strings.Contains(err.Error(), "cannot cast") {
		t.Fatalf("err = %v", err)
	}
}

func TestCreateIndexVarcharLength(t *testing.T) {
	e := newDB(t)
	// The optional varchar length in the XML index DDL parses and is
	// accepted.
	mustExec(t, e, `CREATE INDEX nm ON orders(orddoc) USING XMLPATTERN '//name' AS varchar(32)`)
	mustExec(t, e, `CREATE UNIQUE INDEX uq ON products(id)`)
}

func TestXMLTableByValueCopies(t *testing.T) {
	e := newDB(t)
	mustExec(t, e, `insert into orders values (1, '<order><lineitem price="5"/></order>')`)
	// BY VALUE copies lose identity: except against the base returns
	// the copy.
	res := mustExec(t, e, `SELECT t.li FROM orders o, XMLTable('$o//lineitem'
		passing o.orddoc as "o" COLUMNS "li" XML PATH '.') as t(li)`)
	if len(res.Rows) != 1 || !strings.Contains(res.Rows[0][0].String(), "<lineitem") {
		t.Fatalf("by value rows = %v", res.Rows)
	}
}

func TestValuesMultipleColumns(t *testing.T) {
	e := newDB(t)
	res := mustExec(t, e, `values (1, 'two', null)`)
	if len(res.Rows) != 1 || len(res.Rows[0]) != 3 {
		t.Fatalf("values = %v", res.Rows)
	}
	if res.Rows[0][2].String() != "NULL" {
		t.Fatalf("null cell = %v", res.Rows[0][2])
	}
}

func TestSQLComments(t *testing.T) {
	e := newDB(t)
	mustExec(t, e, `select 1 as x from products -- trailing comment
	`)
}

func TestXMLParseAndSerialize(t *testing.T) {
	e := newDB(t)
	mustExec(t, e, `insert into orders values (1, '<order><custid>7</custid></order>')`)
	res := mustExec(t, e, `select XMLSERIALIZE(XMLQuery('$o/order/custid' passing orddoc as "o") as varchar(100)) from orders`)
	if res.Rows[0][0].String() != "<custid>7</custid>" {
		t.Fatalf("serialize = %v", res.Rows[0][0])
	}
	res = mustExec(t, e, `values (XMLSERIALIZE(XMLPARSE(DOCUMENT '<a><b/></a>') as varchar(50)))`)
	if res.Rows[0][0].String() != "<a><b/></a>" {
		t.Fatalf("parse+serialize = %v", res.Rows[0][0])
	}
	err := execErr(t, e, `values (XMLPARSE(DOCUMENT '<broken'))`)
	if !strings.Contains(err.Error(), "XMLPARSE") {
		t.Fatalf("err = %v", err)
	}
	err = execErr(t, e, `values (XMLSERIALIZE(XMLPARSE(DOCUMENT '<a><b/></a>') as varchar(3)))`)
	if !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("err = %v", err)
	}
	// INSERT via XMLPARSE.
	mustExec(t, e, `insert into orders values (2, XMLPARSE(DOCUMENT '<order><custid>9</custid></order>'))`)
	res = mustExec(t, e, `select ordid from orders where XMLExists('$o/order[custid = 9]' passing orddoc as "o")`)
	if len(res.Rows) != 1 {
		t.Fatalf("insert via XMLPARSE rows = %d", len(res.Rows))
	}
}

func TestXMLTableForOrdinality(t *testing.T) {
	e := newDB(t)
	mustExec(t, e, `insert into orders values (1, '<order><lineitem price="1"/><lineitem price="2"/><lineitem price="3"/></order>')`)
	res := mustExec(t, e, `SELECT t.seq, t.price FROM orders o,
		XMLTable('$o//lineitem' passing o.orddoc as "o"
			COLUMNS "seq" FOR ORDINALITY,
			        "price" DOUBLE PATH '@price') as t(seq, price)`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for i, row := range res.Rows {
		if row[0].String() != fmt.Sprint(i+1) {
			t.Fatalf("ordinality row %d = %s", i, row[0])
		}
	}
}
