package sqlxml

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/xqdb/xqdb/internal/guard"
	"github.com/xqdb/xqdb/internal/postings"
	"github.com/xqdb/xqdb/internal/storage"
	"github.com/xqdb/xqdb/internal/xdm"
	"github.com/xqdb/xqdb/internal/xmlparse"
	"github.com/xqdb/xqdb/internal/xquery"
)

// Executor runs SQL statements against a catalog. Coll resolves
// db2-fn:xmlcolumn references inside embedded XQuery expressions. Guard,
// when non-nil, bounds one query's execution: the engine installs a
// per-query copy of the executor rather than mutating a shared one.
type Executor struct {
	Catalog *storage.Catalog
	Coll    xquery.CollectionResolver
	Guard   *guard.Guard
	// Parallel caps the worker count for partitioning a SELECT's outer
	// base-table scan; <= 1 runs serially. Shard results are gathered in
	// shard order, so output is byte-identical to the serial order.
	Parallel int
}

// ResultCell is one output cell: NULL, a SQL scalar, or an XML value
// (an XDM sequence).
type ResultCell struct {
	Null  bool
	V     xdm.Value
	IsXML bool
	XML   xdm.Sequence
}

// String renders the cell the way the shell prints it.
func (c ResultCell) String() string {
	switch {
	case c.Null:
		return "NULL"
	case c.IsXML:
		return xdm.SerializeSequence(c.XML)
	default:
		return c.V.Lexical()
	}
}

// Result is a statement result.
type Result struct {
	Columns []string
	Rows    [][]ResultCell
	// RowsScanned counts base-table rows visited, the measure the
	// Definition-1 pre-filter reduces.
	RowsScanned int
	// ParallelShards is the worker count the outer scan used (0 or 1 =
	// serial).
	ParallelShards int
}

// Prefilter restricts which rows of FROM tables are scanned: it maps a
// FROM-item position to the sorted posting list of admissible row ids.
// Installed by the engine planner when an XML index is eligible
// (Definition 1). A missing (nil) entry means no filter; an empty
// non-nil list filters everything.
type Prefilter map[int]postings.List

// binding is one FROM item's contribution to the current join row.
type binding struct {
	alias string
	cols  []string
	cells []ResultCell
}

// Exec runs any statement with no prefilter.
func (e *Executor) Exec(stmt Statement) (*Result, error) {
	return e.ExecFiltered(stmt, nil)
}

// ExecFiltered runs a statement with an optional table prefilter.
func (e *Executor) ExecFiltered(stmt Statement, pf Prefilter) (*Result, error) {
	switch s := stmt.(type) {
	case *CreateTable:
		_, err := e.Catalog.CreateTable(s.Name, s.Columns)
		return &Result{}, err
	case *CreateIndex:
		return e.execCreateIndex(s)
	case *Insert:
		return e.execInsert(s)
	case *Select:
		return e.execSelect(s, pf)
	case *Values:
		return e.execValues(s)
	case *Delete:
		return e.execDelete(s)
	case *Explain:
		// The engine planner unwraps EXPLAIN before execution; a bare
		// executor has no plan to render.
		return nil, fmt.Errorf("EXPLAIN requires the engine planner")
	case *DropTable:
		return &Result{}, e.Catalog.DropTable(s.Name)
	case *DropIndex:
		for _, tab := range e.Catalog.Tables() {
			if tab.DropIndex(s.Name) {
				return &Result{}, nil
			}
		}
		return nil, fmt.Errorf("unknown index %s", s.Name)
	}
	return nil, fmt.Errorf("unsupported statement %T", stmt)
}

// execDelete removes the rows matching the predicate, maintaining every
// index on the table.
func (e *Executor) execDelete(s *Delete) (*Result, error) {
	tab, err := e.Catalog.Table(s.Table)
	if err != nil {
		return nil, err
	}
	var cols []string
	for _, c := range tab.Columns {
		cols = append(cols, c.Name)
	}
	var doomed []uint32
	for _, row := range tab.Rows() {
		if err := e.Guard.Step(); err != nil {
			return nil, err
		}
		if s.Where != nil {
			cells := make([]ResultCell, len(row.Cells))
			for ci, cell := range row.Cells {
				cells[ci] = storageCellToResult(cell)
			}
			env := []binding{{alias: tab.Name, cols: cols, cells: cells}}
			keep, err := e.evalPredicate(s.Where, env)
			if err != nil {
				return nil, err
			}
			if !keep {
				continue
			}
		}
		doomed = append(doomed, row.ID)
	}
	for _, id := range doomed {
		if err := tab.Delete(id); err != nil {
			return nil, err
		}
	}
	return &Result{RowsScanned: len(doomed)}, nil
}

func (e *Executor) execCreateIndex(s *CreateIndex) (*Result, error) {
	tab, err := e.Catalog.Table(s.Table)
	if err != nil {
		return nil, err
	}
	if s.IsXML {
		_, err = tab.CreateXMLIndex(s.Name, s.Column, s.Pattern, s.XMLType)
	} else {
		_, err = tab.CreateRelIndex(s.Name, s.Column)
	}
	return &Result{}, err
}

func (e *Executor) execInsert(s *Insert) (*Result, error) {
	tab, err := e.Catalog.Table(s.Table)
	if err != nil {
		return nil, err
	}
	colIdx := make([]int, 0, len(s.Columns))
	if s.Columns != nil {
		for _, c := range s.Columns {
			i, err := tab.ColumnIndex(c)
			if err != nil {
				return nil, err
			}
			colIdx = append(colIdx, i)
		}
	}
	for _, row := range s.Rows {
		cells := make([]storage.Cell, len(tab.Columns))
		for i := range cells {
			cells[i].Null = true
		}
		if s.Columns == nil {
			if len(row) != len(tab.Columns) {
				return nil, fmt.Errorf("insert into %s: %d values for %d columns", s.Table, len(row), len(tab.Columns))
			}
			for i, ex := range row {
				c, err := e.exprToCell(ex)
				if err != nil {
					return nil, err
				}
				cells[i] = c
			}
		} else {
			if len(row) != len(s.Columns) {
				return nil, fmt.Errorf("insert into %s: %d values for %d columns", s.Table, len(row), len(s.Columns))
			}
			for i, ex := range row {
				c, err := e.exprToCell(ex)
				if err != nil {
					return nil, err
				}
				cells[colIdx[i]] = c
			}
		}
		if _, err := tab.Insert(cells); err != nil {
			return nil, err
		}
	}
	return &Result{}, nil
}

// exprToCell evaluates an INSERT value expression (literals and NULL).
func (e *Executor) exprToCell(ex Expr) (storage.Cell, error) {
	v, err := e.evalExpr(ex, nil)
	if err != nil {
		return storage.Cell{}, err
	}
	if v.Null {
		return storage.Cell{Null: true}, nil
	}
	if v.IsXML {
		if len(v.XML) == 1 {
			if n, ok := v.XML[0].(*xdm.Node); ok {
				return storage.Cell{Doc: n.Root()}, nil
			}
		}
		return storage.Cell{}, fmt.Errorf("cannot store a general XML sequence")
	}
	return storage.Cell{V: v.V}, nil
}

func (e *Executor) execValues(s *Values) (*Result, error) {
	res := &Result{}
	var row []ResultCell
	for i, ex := range s.Exprs {
		res.Columns = append(res.Columns, fmt.Sprintf("col%d", i+1))
		v, err := e.evalExpr(ex, nil)
		if err != nil {
			return nil, err
		}
		row = append(row, v)
	}
	res.Rows = append(res.Rows, row)
	return res, nil
}

func (e *Executor) execSelect(s *Select, pf Prefilter) (*Result, error) {
	res := &Result{}
	// Resolve output column names first.
	for i, item := range s.Items {
		switch {
		case item.Star:
			for _, fi := range s.From {
				ft, ok := fi.(*FromTable)
				if !ok {
					xt := fi.(*FromXMLTable)
					for _, cn := range xmlTableColNames(xt) {
						res.Columns = append(res.Columns, cn)
					}
					continue
				}
				tab, err := e.Catalog.Table(ft.Table)
				if err != nil {
					return nil, err
				}
				for _, c := range tab.Columns {
					res.Columns = append(res.Columns, c.Name)
				}
			}
		case item.Alias != "":
			res.Columns = append(res.Columns, item.Alias)
		default:
			if cr, ok := item.Expr.(*ColRef); ok {
				res.Columns = append(res.Columns, cr.Column)
			} else {
				res.Columns = append(res.Columns, fmt.Sprintf("col%d", i+1))
			}
		}
	}

	// The join loop runs in one or more workers. With Parallel > 1 and an
	// outer FROM table of enough rows, the outer scan is partitioned into
	// contiguous shards, one worker each; shard outputs concatenate in
	// shard order, which reproduces the serial row order exactly. Workers
	// share the guard (atomic counters) and an output-row count for the
	// result-item limit.
	var emitted atomic.Int64
	newWorker := func() *selectWorker {
		return &selectWorker{e: e, s: s, pf: pf, outCols: res.Columns, emitted: &emitted}
	}
	var workers []*selectWorker
	if par := e.Parallel; par > 1 && len(s.From) > 0 {
		if ft, ok := s.From[0].(*FromTable); ok {
			if tab, err := e.Catalog.Table(ft.Table); err == nil {
				rows := tab.Rows()
				if len(rows) >= minParallelRows {
					if par > len(rows) {
						par = len(rows)
					}
					ws := make([]*selectWorker, par)
					errs := make([]error, par)
					var wg sync.WaitGroup
					for i := 0; i < par; i++ {
						ws[i] = newWorker()
						lo, hi := i*len(rows)/par, (i+1)*len(rows)/par
						wg.Add(1)
						go func(i int, shard []storage.Row) {
							defer wg.Done()
							defer func() {
								if r := recover(); r != nil {
									errs[i] = &guard.Violation{Kind: guard.Internal, Msg: fmt.Sprintf("panic: %v", r)}
								}
							}()
							errs[i] = ws[i].loop(0, shard)
						}(i, rows[lo:hi])
					}
					wg.Wait()
					for _, err := range errs {
						if err != nil {
							return nil, err
						}
					}
					workers = ws
					res.ParallelShards = par
				}
			}
		}
	}
	if workers == nil {
		w := newWorker()
		if err := w.loop(0, nil); err != nil {
			return nil, err
		}
		workers = []*selectWorker{w}
	}
	var keyed []keyedRow
	for _, w := range workers {
		res.Rows = append(res.Rows, w.rows...)
		keyed = append(keyed, w.keyed...)
		res.RowsScanned += w.scanned
	}
	if len(s.OrderBy) > 0 {
		var sortErr error
		sort.SliceStable(keyed, func(a, b int) bool {
			for k, ob := range s.OrderBy {
				c, err := compareCells(keyed[a].keys[k], keyed[b].keys[k])
				if err != nil && sortErr == nil {
					sortErr = err
				}
				if ob.Desc {
					c = -c
				}
				if c != 0 {
					return c < 0
				}
			}
			return false
		})
		if sortErr != nil {
			return nil, sortErr
		}
		for _, kr := range keyed {
			res.Rows = append(res.Rows, kr.cells)
		}
	}
	if s.Limit >= 0 && len(res.Rows) > s.Limit {
		res.Rows = res.Rows[:s.Limit]
	}
	return res, nil
}

// minParallelRows is the smallest outer table worth sharding; below it
// the goroutine overhead outweighs the work. A variable so tests can
// lower it.
var minParallelRows = 32

// keyedRow pairs an output row with its ORDER BY keys.
type keyedRow struct {
	cells []ResultCell
	keys  []ResultCell
}

// selectWorker evaluates the join loop for one shard of the outer table
// (or the whole table when running serially). Each worker accumulates
// its own output so no synchronization happens on the hot path; the
// shared emitted counter feeds the guard's result-item limit with the
// global count.
type selectWorker struct {
	e       *Executor
	s       *Select
	pf      Prefilter
	outCols []string
	emitted *atomic.Int64

	env     []binding
	rows    [][]ResultCell
	keyed   []keyedRow
	scanned int
}

// loop recurses over the FROM items; outer, when non-nil, replaces the
// first FROM table's row scan with a pre-resolved shard.
func (w *selectWorker) loop(i int, outer []storage.Row) error {
	e, s := w.e, w.s
	if i == len(s.From) {
		return w.emit()
	}
	switch fi := s.From[i].(type) {
	case *FromTable:
		tab, err := e.Catalog.Table(fi.Table)
		if err != nil {
			return err
		}
		var cols []string
		for _, c := range tab.Columns {
			cols = append(cols, c.Name)
		}
		rows := outer
		if rows == nil {
			rows = tab.Rows()
		}
		allowed := w.pf[i]
		for _, row := range rows {
			if err := e.Guard.Step(); err != nil {
				return err
			}
			if allowed != nil && !allowed.Contains(row.ID) {
				continue
			}
			w.scanned++
			cells := make([]ResultCell, len(row.Cells))
			for ci, cell := range row.Cells {
				cells[ci] = storageCellToResult(cell)
			}
			w.env = append(w.env, binding{alias: fi.Alias, cols: cols, cells: cells})
			if err := w.loop(i+1, nil); err != nil {
				return err
			}
			w.env = w.env[:len(w.env)-1]
		}
		return nil
	case *FromXMLTable:
		rows, cols, err := e.evalXMLTable(fi, w.env)
		if err != nil {
			return err
		}
		for _, cells := range rows {
			w.env = append(w.env, binding{alias: fi.Alias, cols: cols, cells: cells})
			if err := w.loop(i+1, nil); err != nil {
				return err
			}
			w.env = w.env[:len(w.env)-1]
		}
		return nil
	}
	return fmt.Errorf("unsupported FROM item")
}

// emit evaluates WHERE and the select list for the current join row.
func (w *selectWorker) emit() error {
	e, s := w.e, w.s
	if s.Where != nil {
		keep, err := e.evalPredicate(s.Where, w.env)
		if err != nil {
			return err
		}
		if !keep {
			return nil
		}
	}
	var out []ResultCell
	for _, item := range s.Items {
		if item.Star {
			for _, b := range w.env {
				out = append(out, b.cells...)
			}
			continue
		}
		v, err := e.evalExpr(item.Expr, w.env)
		if err != nil {
			return err
		}
		out = append(out, v)
	}
	if len(s.OrderBy) > 0 {
		kr := keyedRow{cells: out}
		for _, ob := range s.OrderBy {
			// A bare name matching a select-list alias refers to the
			// output column (standard SQL).
			if cr, ok := ob.Expr.(*ColRef); ok && cr.Table == "" {
				if idx := outputColumn(w.outCols, cr.Column); idx >= 0 && idx < len(out) {
					kr.keys = append(kr.keys, out[idx])
					continue
				}
			}
			k, err := e.evalExpr(ob.Expr, w.env)
			if err != nil {
				return err
			}
			kr.keys = append(kr.keys, k)
		}
		w.keyed = append(w.keyed, kr)
		return e.Guard.Items(int(w.emitted.Add(1)))
	}
	w.rows = append(w.rows, out)
	return e.Guard.Items(int(w.emitted.Add(1)))
}

// outputColumn finds a select-list column by name (-1 if absent). Star
// items expand column lists, so positions line up with output cells only
// when no star precedes; star selects rarely pair with aliases.
func outputColumn(cols []string, name string) int {
	for i, c := range cols {
		if strings.EqualFold(c, name) {
			return i
		}
	}
	return -1
}

// compareCells orders two cells under SQL rules; NULLs sort last.
func compareCells(a, b ResultCell) (int, error) {
	switch {
	case a.Null && b.Null:
		return 0, nil
	case a.Null:
		return 1, nil
	case b.Null:
		return -1, nil
	case a.IsXML || b.IsXML:
		return 0, fmt.Errorf("cannot order by an XML value; apply XMLCAST")
	}
	lt, err := xdm.SQLCompare(xdm.OpLt, a.V, b.V)
	if err != nil {
		return 0, err
	}
	if lt {
		return -1, nil
	}
	gt, err := xdm.SQLCompare(xdm.OpGt, a.V, b.V)
	if err != nil {
		return 0, err
	}
	if gt {
		return 1, nil
	}
	return 0, nil
}

func storageCellToResult(cell storage.Cell) ResultCell {
	switch {
	case cell.Null:
		return ResultCell{Null: true}
	case cell.Doc != nil:
		return ResultCell{IsXML: true, XML: xdm.Sequence{cell.Doc}}
	default:
		return ResultCell{V: cell.V}
	}
}

func xmlTableColNames(xt *FromXMLTable) []string {
	names := make([]string, len(xt.Columns))
	for i, c := range xt.Columns {
		if i < len(xt.ColNames) {
			names[i] = xt.ColNames[i]
		} else {
			names[i] = c.Name
		}
	}
	return names
}

// evalXMLTable computes the XMLTable function for the current outer row.
// The row-producer's items become context items of the column PATH
// expressions; an empty column result is NULL, so column predicates never
// reduce the row count (§3.2).
func (e *Executor) evalXMLTable(xt *FromXMLTable, env []binding) ([][]ResultCell, []string, error) {
	vars, err := e.passingVars(xt.Passing, env)
	if err != nil {
		return nil, nil, err
	}
	items, err := xquery.EvalGuarded(xt.RowModule, vars, e.Coll, e.Guard)
	if err != nil {
		return nil, nil, fmt.Errorf("XMLTable row expression: %w", err)
	}
	names := xmlTableColNames(xt)
	var rows [][]ResultCell
	for itemIdx, item := range items {
		cells := make([]ResultCell, len(xt.Columns))
		for ci, col := range xt.Columns {
			if col.Ordinality {
				cells[ci] = ResultCell{V: xdm.NewInteger(int64(itemIdx + 1))}
				continue
			}
			seq, err := xquery.EvalWithContextGuarded(col.PathModule, item, vars, e.Coll, e.Guard)
			if err != nil {
				return nil, nil, fmt.Errorf("XMLTable column %s: %w", col.Name, err)
			}
			if len(seq) == 0 {
				cells[ci] = ResultCell{Null: true}
				continue
			}
			if col.Type == storage.XML {
				out := seq
				if !col.ByRef {
					// BY VALUE: copy nodes, losing identity and parents.
					out = make(xdm.Sequence, len(seq))
					for i, it := range seq {
						if n, ok := it.(*xdm.Node); ok {
							out[i] = n.Copy()
						} else {
							out[i] = it
						}
					}
				}
				cells[ci] = ResultCell{IsXML: true, XML: out}
				continue
			}
			v, err := sequenceToSQL(seq, col.Type, col.Size)
			if err != nil {
				return nil, nil, fmt.Errorf("XMLTable column %s: %w", col.Name, err)
			}
			cells[ci] = v
		}
		rows = append(rows, cells)
	}
	return rows, names, nil
}

// sequenceToSQL converts an XDM sequence to a SQL scalar: singleton
// atomized and cast; a longer sequence is a type error.
func sequenceToSQL(seq xdm.Sequence, t storage.ColumnType, size int) (ResultCell, error) {
	a, err := xdm.Atomize(seq)
	if err != nil {
		return ResultCell{}, err
	}
	if len(a) == 0 {
		return ResultCell{Null: true}, nil
	}
	if len(a) > 1 {
		return ResultCell{}, fmt.Errorf("XML value has %d items; a SQL scalar requires exactly one", len(a))
	}
	v, err := a[0].(xdm.Value).Cast(t.XDMType())
	if err != nil {
		return ResultCell{}, err
	}
	if t == storage.Varchar && size > 0 && len(v.S) > size {
		return ResultCell{}, fmt.Errorf("value %q exceeds varchar(%d)", v.S, size)
	}
	return ResultCell{V: v}, nil
}

// passingVars evaluates PASSING bindings into XQuery external variables.
// Scalar values keep their SQL-derived XDM types, which is how the
// compiler learns comparison types from the SQL side (§3.3).
func (e *Executor) passingVars(items []PassItem, env []binding) (xquery.StaticVars, error) {
	vars := xquery.StaticVars{}
	for _, it := range items {
		v, err := e.evalExpr(it.Expr, env)
		if err != nil {
			return nil, err
		}
		switch {
		case v.Null:
			vars[it.As] = nil
		case v.IsXML:
			vars[it.As] = v.XML
		default:
			vars[it.As] = xdm.Sequence{v.V}
		}
	}
	return vars, nil
}

// evalPredicate evaluates a WHERE predicate with SQL three-valued logic;
// unknown filters the row.
func (e *Executor) evalPredicate(ex Expr, env []binding) (bool, error) {
	tv, err := e.evalTruth(ex, env)
	if err != nil {
		return false, err
	}
	return tv == truthTrue, nil
}

type truth uint8

const (
	truthFalse truth = iota
	truthTrue
	truthUnknown
)

func (e *Executor) evalTruth(ex Expr, env []binding) (truth, error) {
	switch x := ex.(type) {
	case *Logical:
		l, err := e.evalTruth(x.Left, env)
		if err != nil {
			return truthFalse, err
		}
		r, err := e.evalTruth(x.Right, env)
		if err != nil {
			return truthFalse, err
		}
		if x.Op == "and" {
			switch {
			case l == truthFalse || r == truthFalse:
				return truthFalse, nil
			case l == truthTrue && r == truthTrue:
				return truthTrue, nil
			}
			return truthUnknown, nil
		}
		switch {
		case l == truthTrue || r == truthTrue:
			return truthTrue, nil
		case l == truthFalse && r == truthFalse:
			return truthFalse, nil
		}
		return truthUnknown, nil
	case *Not:
		t, err := e.evalTruth(x.Operand, env)
		if err != nil {
			return truthFalse, err
		}
		switch t {
		case truthTrue:
			return truthFalse, nil
		case truthFalse:
			return truthTrue, nil
		}
		return truthUnknown, nil
	case *IsNull:
		v, err := e.evalExpr(x.Operand, env)
		if err != nil {
			return truthFalse, err
		}
		if v.Null != x.Negate {
			return truthTrue, nil
		}
		return truthFalse, nil
	case *Compare:
		l, err := e.evalExpr(x.Left, env)
		if err != nil {
			return truthFalse, err
		}
		r, err := e.evalExpr(x.Right, env)
		if err != nil {
			return truthFalse, err
		}
		if l.Null || r.Null {
			return truthUnknown, nil
		}
		if l.IsXML || r.IsXML {
			return truthFalse, fmt.Errorf("cannot compare XML values with SQL comparison operators; use XMLEXISTS or XMLCAST")
		}
		ok, err := xdm.SQLCompare(x.Op, l.V, r.V)
		if err != nil {
			return truthFalse, err
		}
		if ok {
			return truthTrue, nil
		}
		return truthFalse, nil
	case *XMLExistsExpr:
		vars, err := e.passingVars(x.Passing, env)
		if err != nil {
			return truthFalse, err
		}
		seq, err := xquery.EvalGuarded(x.Module, vars, e.Coll, e.Guard)
		if err != nil {
			return truthFalse, fmt.Errorf("XMLEXISTS: %w", err)
		}
		if len(seq) > 0 {
			return truthTrue, nil
		}
		return truthFalse, nil
	default:
		v, err := e.evalExpr(ex, env)
		if err != nil {
			return truthFalse, err
		}
		if v.Null {
			return truthUnknown, nil
		}
		if v.V.T == xdm.Boolean {
			if v.V.B {
				return truthTrue, nil
			}
			return truthFalse, nil
		}
		return truthFalse, fmt.Errorf("predicate does not evaluate to a boolean")
	}
}

func (e *Executor) evalExpr(ex Expr, env []binding) (ResultCell, error) {
	switch x := ex.(type) {
	case *Literal:
		return ResultCell{V: x.V}, nil
	case *Null:
		return ResultCell{Null: true}, nil
	case *ColRef:
		return resolveColumn(x, env)
	case *XMLQueryExpr:
		vars, err := e.passingVars(x.Passing, env)
		if err != nil {
			return ResultCell{}, err
		}
		seq, err := xquery.EvalGuarded(x.Module, vars, e.Coll, e.Guard)
		if err != nil {
			return ResultCell{}, fmt.Errorf("XMLQUERY: %w", err)
		}
		return ResultCell{IsXML: true, XML: seq}, nil
	case *XMLCastExpr:
		v, err := e.evalExpr(x.Operand, env)
		if err != nil {
			return ResultCell{}, err
		}
		if v.Null {
			return ResultCell{Null: true}, nil
		}
		if v.IsXML {
			return sequenceToSQL(v.XML, x.Type, x.Size)
		}
		cv, err := v.V.Cast(x.Type.XDMType())
		if err != nil {
			return ResultCell{}, err
		}
		if x.Type == storage.Varchar && x.Size > 0 && len(cv.S) > x.Size {
			return ResultCell{}, fmt.Errorf("value %q exceeds varchar(%d)", cv.S, x.Size)
		}
		return ResultCell{V: cv}, nil
	case *XMLParseExpr:
		v, err := e.evalExpr(x.Operand, env)
		if err != nil {
			return ResultCell{}, err
		}
		if v.Null {
			return ResultCell{Null: true}, nil
		}
		if v.IsXML {
			return v, nil
		}
		maxDepth, maxBytes := e.Guard.ParseLimits()
		doc, err := xmlparse.ParseLimited(v.V.Lexical(), xmlparse.Limits{MaxDepth: maxDepth, MaxBytes: maxBytes})
		if err != nil {
			if errors.Is(err, xmlparse.ErrLimit) {
				return ResultCell{}, &guard.Violation{Kind: guard.LimitExceeded, Msg: err.Error()}
			}
			return ResultCell{}, fmt.Errorf("XMLPARSE: %w", err)
		}
		return ResultCell{IsXML: true, XML: xdm.Sequence{doc}}, nil
	case *XMLSerializeExpr:
		v, err := e.evalExpr(x.Operand, env)
		if err != nil {
			return ResultCell{}, err
		}
		if v.Null {
			return ResultCell{Null: true}, nil
		}
		var s string
		if v.IsXML {
			s = xdm.SerializeSequence(v.XML)
		} else {
			s = v.V.Lexical()
		}
		if x.Size > 0 && len(s) > x.Size {
			return ResultCell{}, fmt.Errorf("XMLSERIALIZE: value length %d exceeds varchar(%d)", len(s), x.Size)
		}
		return ResultCell{V: xdm.NewString(s)}, nil
	case *Compare, *Logical, *Not, *IsNull, *XMLExistsExpr:
		t, err := e.evalTruth(ex, env)
		if err != nil {
			return ResultCell{}, err
		}
		if t == truthUnknown {
			return ResultCell{Null: true}, nil
		}
		return ResultCell{V: xdm.NewBoolean(t == truthTrue)}, nil
	}
	return ResultCell{}, fmt.Errorf("unsupported expression %T", ex)
}

// resolveColumn finds a column in the bindings; a qualified reference
// matches its alias, an unqualified one must be unambiguous.
func resolveColumn(cr *ColRef, env []binding) (ResultCell, error) {
	var found *ResultCell
	for bi := range env {
		b := &env[bi]
		if cr.Table != "" && !strings.EqualFold(b.alias, cr.Table) {
			continue
		}
		for ci, cn := range b.cols {
			if strings.EqualFold(cn, cr.Column) {
				if found != nil {
					return ResultCell{}, fmt.Errorf("ambiguous column reference %s", cr.Column)
				}
				c := b.cells[ci]
				found = &c
			}
		}
	}
	if found == nil {
		name := cr.Column
		if cr.Table != "" {
			name = cr.Table + "." + cr.Column
		}
		return ResultCell{}, fmt.Errorf("unknown column %s", name)
	}
	return *found, nil
}
