// Package synopsis maintains a DataGuide-style path summary for one XML
// column: every distinct rooted label path that occurs in the stored
// documents, with its total node count and the number of documents
// containing it. The summary is tiny compared to the data (paths repeat
// massively across a corpus), cheap to maintain incrementally, and gives
// the planner structural statistics the indexes cannot: whether a query
// pattern can match anything at all, how many nodes it reaches, and how
// many documents those nodes spread over.
//
// Batch mirrors xmlindex.Extractor: workers accumulate per-document path
// counts lock-free and merge into the shared synopsis under one lock
// take, so ingestion pays one extra map update per distinct path per
// worker, not per node.
package synopsis

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/xqdb/xqdb/internal/metrics"
	"github.com/xqdb/xqdb/internal/pattern"
	"github.com/xqdb/xqdb/internal/xdm"
)

// entry is the statistics for one distinct rooted label path.
type entry struct {
	labels []pattern.Label
	count  int64 // nodes with this path across all documents
	docs   int64 // documents containing at least one such node
}

// Synopsis is the path summary for one XML column. The zero value is not
// usable; construct with New. All methods are safe for concurrent use
// and nil-safe: a nil synopsis reports no knowledge (Match returns
// -1, -1) and ignores maintenance calls, so callers on tables built
// without a synopsis need no special casing.
type Synopsis struct {
	mu    sync.RWMutex
	byKey map[string]*entry
	// version counts path-set changes (a distinct path appearing or the
	// last node of a path disappearing). Count-only changes do not bump
	// it: they can stale an estimate but never a skip decision.
	version atomic.Uint64
	// mPaths, when instrumented, tracks the distinct path count.
	mPaths *metrics.Gauge
}

// New returns an empty synopsis.
func New() *Synopsis {
	return &Synopsis{byKey: map[string]*entry{}}
}

// Instrument attaches the distinct-path gauge (shared across columns:
// updates are deltas, not sets).
func (s *Synopsis) Instrument(g *metrics.Gauge) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mPaths = g
	s.mPaths.Add(int64(len(s.byKey)))
}

// Version returns the path-set version counter.
func (s *Synopsis) Version() uint64 {
	if s == nil {
		return 0
	}
	return s.version.Load()
}

// Len returns the number of distinct paths.
func (s *Synopsis) Len() int {
	if s == nil {
		return 0
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byKey)
}

// AddDoc merges one document's paths into the synopsis. It reports
// whether the path set changed (a path seen for the first time).
func (s *Synopsis) AddDoc(doc *xdm.Node) bool {
	if s == nil {
		return false
	}
	b := NewBatch()
	b.AddDoc(doc)
	return s.Merge(b)
}

// RemoveDoc subtracts one document's paths, deleting entries whose node
// count reaches zero. It reports whether the path set changed. The
// document must have been added before (counts are not clamped — a
// mismatched remove is a caller bug the rebuild-equivalence tests catch).
func (s *Synopsis) RemoveDoc(doc *xdm.Node) bool {
	if s == nil {
		return false
	}
	b := NewBatch()
	b.AddDoc(doc)
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := int64(0)
	for k, be := range b.byKey {
		e := s.byKey[k]
		if e == nil {
			continue
		}
		e.count -= be.count
		e.docs -= be.docs
		if e.count <= 0 {
			delete(s.byKey, k)
			removed++
		}
	}
	if removed == 0 {
		return false
	}
	s.version.Add(1)
	if s.mPaths != nil {
		s.mPaths.Add(-removed)
	}
	return true
}

// Merge folds a batch into the synopsis under one lock take and reports
// whether the path set changed. The batch must not be reused after.
func (s *Synopsis) Merge(b *Batch) bool {
	if s == nil || len(b.byKey) == 0 {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	added := int64(0)
	for k, be := range b.byKey {
		if e, ok := s.byKey[k]; ok {
			e.count += be.count
			e.docs += be.docs
		} else {
			s.byKey[k] = &entry{labels: be.labels, count: be.count, docs: be.docs}
			added++
		}
	}
	if added == 0 {
		return false
	}
	s.version.Add(1)
	if s.mPaths != nil {
		s.mPaths.Add(added)
	}
	return true
}

// Match sums the statistics of every path the pattern matches: the total
// matching node count and the sum of per-path document counts. The node
// count is exact (each node's rooted path matches or does not); the
// document figure is an upper bound — a document holding two distinct
// matching paths is counted twice — which is what a selectivity estimate
// needs. A nil synopsis returns (-1, -1): no knowledge.
func (s *Synopsis) Match(p *pattern.Pattern) (nodes, docs int64) {
	if s == nil || p == nil {
		return -1, -1
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, e := range s.byKey {
		if p.Match(e.labels) {
			nodes += e.count
			docs += e.docs
		}
	}
	return nodes, docs
}

// PathStat is one path's statistics in Paths' enumeration.
type PathStat struct {
	// Path renders the label path in XMLPATTERN syntax: /a/b/@c,
	// /a/text(), /{ns}e for namespaced elements.
	Path  string
	Count int64
	Docs  int64
}

// Paths enumerates the summary sorted by rendered path, so the output is
// stable across runs regardless of map iteration order.
func (s *Synopsis) Paths() []PathStat {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	out := make([]PathStat, 0, len(s.byKey))
	for _, e := range s.byKey {
		out = append(out, PathStat{Path: renderPath(e.labels), Count: e.count, Docs: e.docs})
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// renderPath writes a label path in the XMLPATTERN surface syntax.
func renderPath(labels []pattern.Label) string {
	var b strings.Builder
	for _, l := range labels {
		b.WriteByte('/')
		switch l.Kind {
		case pattern.AttributeLabel:
			b.WriteByte('@')
		case pattern.TextLabel:
			b.WriteString("text()")
			continue
		case pattern.CommentLabel:
			b.WriteString("comment()")
			continue
		case pattern.PILabel:
			b.WriteString("processing-instruction(" + l.Local + ")")
			continue
		}
		if l.Space != "" {
			b.WriteString("{" + l.Space + "}")
		}
		b.WriteString(l.Local)
	}
	return b.String()
}

// Batch accumulates path counts for a set of documents without touching
// any shared state. Not safe for concurrent use — one batch per worker.
type bentry struct {
	labels []pattern.Label
	count  int64
	docs   int64
	// seenDoc marks the last Batch.docSeq that touched this path, so the
	// per-document containment count needs no per-document set.
	seenDoc int64
}

// Batch is the per-worker accumulation buffer; see the package comment.
type Batch struct {
	byKey  map[string]*bentry
	labels []pattern.Label
	keyBuf []byte
	docSeq int64
}

// NewBatch returns an empty batch.
func NewBatch() *Batch {
	return &Batch{byKey: map[string]*bentry{}}
}

// Len returns the number of distinct paths accumulated.
func (b *Batch) Len() int { return len(b.byKey) }

// AddDoc records every rooted label path of the document: elements,
// attributes, text, comment, and processing-instruction nodes, with the
// document node transparent — exactly the node population the XMLPATTERN
// walk (xmlindex.forMatching) sees, so synopsis verdicts and index
// contents can never disagree about what exists.
func (b *Batch) AddDoc(doc *xdm.Node) {
	b.docSeq++
	push := func(l pattern.Label) int {
		mark := len(b.keyBuf)
		b.keyBuf = append(b.keyBuf, byte(l.Kind))
		b.keyBuf = append(b.keyBuf, l.Space...)
		b.keyBuf = append(b.keyBuf, 0)
		b.keyBuf = append(b.keyBuf, l.Local...)
		b.keyBuf = append(b.keyBuf, 1)
		b.labels = append(b.labels, l)
		return mark
	}
	pop := func(mark int) {
		b.keyBuf = b.keyBuf[:mark]
		b.labels = b.labels[:len(b.labels)-1]
	}
	record := func() {
		e := b.byKey[string(b.keyBuf)]
		if e == nil {
			e = &bentry{labels: append([]pattern.Label(nil), b.labels...)}
			b.byKey[string(b.keyBuf)] = e
		}
		e.count++
		if e.seenDoc != b.docSeq {
			e.seenDoc = b.docSeq
			e.docs++
		}
	}
	var walk func(*xdm.Node)
	walk = func(n *xdm.Node) {
		mark := -1
		if n.Kind != xdm.DocumentNode {
			mark = push(nodeLabel(n))
			record()
		}
		for _, a := range n.Attrs {
			am := push(pattern.Label{Kind: pattern.AttributeLabel, Space: a.Name.Space, Local: a.Name.Local})
			record()
			pop(am)
		}
		for _, c := range n.Children {
			walk(c)
		}
		if mark >= 0 {
			pop(mark)
		}
	}
	walk(doc)
}

// nodeLabel converts one node to its pattern label (the xmlindex walk's
// labeling, duplicated here to keep the packages independent).
func nodeLabel(n *xdm.Node) pattern.Label {
	switch n.Kind {
	case xdm.ElementNode:
		return pattern.Label{Kind: pattern.ElementLabel, Space: n.Name.Space, Local: n.Name.Local}
	case xdm.AttributeNode:
		return pattern.Label{Kind: pattern.AttributeLabel, Space: n.Name.Space, Local: n.Name.Local}
	case xdm.TextNode:
		return pattern.Label{Kind: pattern.TextLabel}
	case xdm.CommentNode:
		return pattern.Label{Kind: pattern.CommentLabel}
	case xdm.ProcessingInstructionNode:
		return pattern.Label{Kind: pattern.PILabel, Local: n.Name.Local}
	}
	return pattern.Label{}
}
