package synopsis

import (
	"sort"
	"sync"
	"testing"

	"github.com/xqdb/xqdb/internal/metrics"
	"github.com/xqdb/xqdb/internal/pattern"
	"github.com/xqdb/xqdb/internal/xdm"
	"github.com/xqdb/xqdb/internal/xmlparse"
)

func doc(t testing.TB, src string) *xdm.Node {
	t.Helper()
	d, err := xmlparse.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return d
}

func pat(t testing.TB, src string) *pattern.Pattern {
	t.Helper()
	p, err := pattern.Parse(src)
	if err != nil {
		t.Fatalf("pattern %q: %v", src, err)
	}
	return p
}

func TestAddDocCounts(t *testing.T) {
	s := New()
	s.AddDoc(doc(t, `<order date="d"><lineitem price="1"/><lineitem price="2">x</lineitem></order>`))
	s.AddDoc(doc(t, `<order><lineitem price="3"/></order>`))

	cases := []struct {
		pattern     string
		nodes, docs int64
	}{
		{"/order", 2, 2},
		{"/order/@date", 1, 1},
		{"//lineitem", 3, 2},
		{"//lineitem/@price", 3, 2},
		{"/order/lineitem/text()", 1, 1},
		{"//missing", 0, 0},
		{"//lineitem/@missing", 0, 0},
	}
	for _, c := range cases {
		nodes, docs := s.Match(pat(t, c.pattern))
		if nodes != c.nodes || docs != c.docs {
			t.Errorf("Match(%s) = (%d nodes, %d docs), want (%d, %d)", c.pattern, nodes, docs, c.nodes, c.docs)
		}
	}
}

func TestNilSynopsisIsInert(t *testing.T) {
	var s *Synopsis
	if n, d := s.Match(pat(t, "/a")); n != -1 || d != -1 {
		t.Fatalf("nil Match = (%d, %d), want (-1, -1)", n, d)
	}
	if s.AddDoc(doc(t, `<a/>`)) || s.RemoveDoc(doc(t, `<a/>`)) || s.Merge(NewBatch()) {
		t.Fatal("nil synopsis reported a path-set change")
	}
	if s.Len() != 0 || s.Version() != 0 || s.Paths() != nil {
		t.Fatal("nil synopsis reported contents")
	}
	s.Instrument(nil) // must not panic
}

func TestVersionTracksPathSetOnly(t *testing.T) {
	s := New()
	v := s.Version()
	if !s.AddDoc(doc(t, `<a><b/></a>`)) {
		t.Fatal("first AddDoc: path set unchanged")
	}
	if s.Version() == v {
		t.Fatal("new paths did not bump the version")
	}
	v = s.Version()
	if s.AddDoc(doc(t, `<a><b/></a>`)) {
		t.Fatal("identical AddDoc: path set reported changed")
	}
	if s.Version() != v {
		t.Fatal("count-only change bumped the version")
	}
	if s.RemoveDoc(doc(t, `<a><b/></a>`)) {
		t.Fatal("partial RemoveDoc: path set reported changed")
	}
	if s.Version() != v {
		t.Fatal("count-only removal bumped the version")
	}
	if !s.RemoveDoc(doc(t, `<a><b/></a>`)) {
		t.Fatal("final RemoveDoc: path set unchanged")
	}
	if s.Version() == v {
		t.Fatal("emptying the path set did not bump the version")
	}
	if s.Len() != 0 {
		t.Fatalf("Len after removing everything = %d", s.Len())
	}
}

func TestInstrumentGaugeTracksPaths(t *testing.T) {
	reg := metrics.NewRegistry()
	g := reg.Gauge("synopsis.paths")
	s := New()
	s.AddDoc(doc(t, `<a><b/></a>`)) // /a, /a/b
	s.Instrument(g)
	if g.Value() != 2 {
		t.Fatalf("gauge after Instrument = %d, want 2", g.Value())
	}
	s.AddDoc(doc(t, `<a><c/></a>`)) // adds /a/c
	if g.Value() != 3 {
		t.Fatalf("gauge after growth = %d, want 3", g.Value())
	}
	s.RemoveDoc(doc(t, `<a><c/></a>`)) // /a survives (count 1), /a/c goes
	if g.Value() != 2 {
		t.Fatalf("gauge after shrink = %d, want 2", g.Value())
	}
}

func TestPathsSortedAndRendered(t *testing.T) {
	s := New()
	s.AddDoc(doc(t, `<order date="d"><!-- c --><lineitem price="1">x</lineitem><?tgt data?></order>`))
	paths := s.Paths()
	if !sort.SliceIsSorted(paths, func(i, j int) bool { return paths[i].Path < paths[j].Path }) {
		t.Fatalf("Paths not sorted: %+v", paths)
	}
	want := map[string]int64{
		"/order":                             1,
		"/order/@date":                       1,
		"/order/comment()":                   1,
		"/order/lineitem":                    1,
		"/order/lineitem/@price":             1,
		"/order/lineitem/text()":             1,
		"/order/processing-instruction(tgt)": 1,
	}
	if len(paths) != len(want) {
		t.Fatalf("got %d paths, want %d: %+v", len(paths), len(want), paths)
	}
	for _, ps := range paths {
		if want[ps.Path] != ps.Count {
			t.Errorf("path %q count %d, want %d", ps.Path, ps.Count, want[ps.Path])
		}
	}
}

// TestMergeMatchesPerDocAdd: folding per-worker batches produces exactly
// the synopsis that per-document AddDoc builds, including under
// concurrent merges (run with -race).
func TestMergeMatchesPerDocAdd(t *testing.T) {
	docs := []string{
		`<order><lineitem price="1"/></order>`,
		`<order note="n"><lineitem price="2">x</lineitem><lineitem price="3"/></order>`,
		`<invoice><total>9</total></invoice>`,
		`<order><archived><lineitem price="4"/></archived></order>`,
	}
	serial := New()
	for _, src := range docs {
		serial.AddDoc(doc(t, src))
	}

	merged := New()
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			b := NewBatch()
			for i, src := range docs {
				if i%2 == w {
					b.AddDoc(doc(t, src))
				}
			}
			merged.Merge(b)
		}(w)
	}
	wg.Wait()

	sp, mp := serial.Paths(), merged.Paths()
	if len(sp) != len(mp) {
		t.Fatalf("serial %d paths, merged %d", len(sp), len(mp))
	}
	for i := range sp {
		if sp[i] != mp[i] {
			t.Fatalf("path %d: serial %+v, merged %+v", i, sp[i], mp[i])
		}
	}
}
