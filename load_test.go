package xqdb

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"github.com/xqdb/xqdb/internal/workload"
)

// writeOrdersDir materializes a generated orders corpus as .xml files.
func writeOrdersDir(t testing.TB, n int) string {
	t.Helper()
	dir := t.TempDir()
	for i, doc := range workload.Orders(workload.DefaultOrders(n)) {
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("order-%05d.xml", i)), []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// loadQueries is the probe battery the equivalence tests run on both
// sides: indexed range probes, structural navigation, and aggregation.
var loadQueries = []string{
	`db2-fn:xmlcolumn("ORDERS.DOC")//lineitem[@price > 100]`,
	`db2-fn:xmlcolumn("ORDERS.DOC")//lineitem[@price = 16.34]`,
	`db2-fn:xmlcolumn("ORDERS.DOC")/order/custid`,
	`count(db2-fn:xmlcolumn("ORDERS.DOC")//lineitem)`,
}

// TestBulkLoadQueryEquivalence is the acceptance property test: every
// query over a bulk-loaded database returns results byte-identical to
// the same corpus loaded through per-row InsertValidated.
func TestBulkLoadQueryEquivalence(t *testing.T) {
	const n = 80
	dir := writeOrdersDir(t, n)

	setup := func(db *DB) {
		db.MustExecSQL(`create table orders (id integer, doc xml)`)
		db.MustExecSQL(`create index li_price on orders(doc) using xmlpattern '//lineitem/@price' as double`)
		db.MustExecSQL(`create index custid on orders(doc) using xmlpattern '/order/custid' as varchar`)
	}

	bulk := Open(WithLoadParallelism(4))
	setup(bulk)
	if got, err := bulk.LoadXMLDir("orders", dir); err != nil || got != n {
		t.Fatalf("bulk load: %d, %v", got, err)
	}

	perRow := Open()
	setup(perRow)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i, ent := range entries {
		data, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := perRow.InsertValidated("orders", int64(i), string(data), nil); err != nil {
			t.Fatal(err)
		}
	}

	for _, q := range loadQueries {
		want, wstats, err := perRow.QueryXQuery(q)
		if err != nil {
			t.Fatalf("%s (per-row): %v", q, err)
		}
		got, gstats, err := bulk.QueryXQuery(q)
		if err != nil {
			t.Fatalf("%s (bulk): %v", q, err)
		}
		if !reflect.DeepEqual(got.Rows(), want.Rows()) {
			t.Fatalf("%s diverged:\nbulk   %v\nperRow %v", q, got.Rows(), want.Rows())
		}
		// Same plans on both sides: the bulk-built indexes must be just
		// as eligible as incrementally built ones.
		if !reflect.DeepEqual(gstats.IndexesUsed, wstats.IndexesUsed) {
			t.Fatalf("%s used different indexes: bulk %v, perRow %v", q, gstats.IndexesUsed, wstats.IndexesUsed)
		}
	}
}

// TestLoadXMLDirOptsLimitsMidStream: per-file parse limits hold while
// streaming; an oversized file aborts the load, names the file, and
// rolls back completely.
func TestLoadXMLDirOptsLimitsMidStream(t *testing.T) {
	dir := writeOrdersDir(t, 3)
	var big strings.Builder
	big.WriteString("<order>")
	for i := 0; i < 1<<15; i++ {
		big.WriteString("<lineitem price='1'/>")
	}
	big.WriteString("</order>")
	if err := os.WriteFile(filepath.Join(dir, "zz-huge.xml"), []byte(big.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	db := Open()
	db.MustExecSQL(`create table orders (id integer, doc xml)`)
	n, err := db.LoadXMLDirOpts("orders", dir, LoadOptions{MaxDocBytes: 4096})
	if err == nil || !strings.Contains(err.Error(), "zz-huge.xml") {
		t.Fatalf("err = %v, want it to name zz-huge.xml", err)
	}
	if n != 0 {
		t.Fatalf("failed load reported %d rows", n)
	}
	if res := db.MustExecSQL(`select id from orders`); res.Len() != 0 {
		t.Fatalf("table has %d rows after rolled-back load", res.Len())
	}
	// The same corpus without the cap loads fine.
	if _, err := db.LoadXMLDirOpts("orders", dir, LoadOptions{}); err != nil {
		t.Fatalf("uncapped load: %v", err)
	}
}

// TestLoadXMLDirOptsCancel: a pre-canceled context aborts atomically.
func TestLoadXMLDirOptsCancel(t *testing.T) {
	dir := writeOrdersDir(t, 10)
	db := Open()
	db.MustExecSQL(`create table orders (id integer, doc xml)`)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.LoadXMLDirOpts("orders", dir, LoadOptions{Context: ctx}); err == nil {
		t.Fatal("canceled load succeeded")
	}
	if res := db.MustExecSQL(`select id from orders`); res.Len() != 0 {
		t.Fatalf("canceled load left %d rows", res.Len())
	}
}

// TestLoadXMLDirOptsSchema: schema validation runs inside the pipeline;
// annotations land before indexing, and a failing document fails the
// whole load.
func TestLoadXMLDirOptsSchema(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a.xml"), []byte(`<order><lineitem price="1e2"/></order>`), 0o644); err != nil {
		t.Fatal(err)
	}
	db := Open()
	db.MustExecSQL(`create table orders (id integer, doc xml)`)
	db.MustExecSQL(`create index li_price on orders(doc) using xmlpattern '//lineitem/@price' as double`)
	sch := NewSchema("v1")
	if err := sch.Declare("@price", "double"); err != nil {
		t.Fatal(err)
	}
	if n, err := db.LoadXMLDirOpts("orders", dir, LoadOptions{Schema: sch}); err != nil || n != 1 {
		t.Fatalf("validated load: %d, %v", n, err)
	}
	// The annotation-driven cast indexed the scientific-notation price.
	res, _, err := db.QueryXQuery(`db2-fn:xmlcolumn("ORDERS.DOC")//lineitem[@price = 100]`)
	if err != nil || res.Len() != 1 {
		t.Fatalf("annotated probe: %v rows=%d", err, res.Len())
	}

	bad := NewSchema("v2")
	if err := bad.Declare("custid", "integer"); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "b.xml"), []byte(`<order><custid>not-a-number</custid></order>`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := db.LoadXMLDirOpts("orders", dir, LoadOptions{Schema: bad}); err == nil || !strings.Contains(err.Error(), "b.xml") {
		t.Fatalf("invalid doc: err = %v, want it to name b.xml", err)
	}
}

// TestConcurrentLoadAndQueries runs bulk loads against in-flight indexed
// queries (the -race acceptance test): queries must never observe a
// torn state — every result reflects either the pre-load or post-load
// corpus, and no probe errors.
func TestConcurrentLoadAndQueries(t *testing.T) {
	dir := writeOrdersDir(t, 30)
	db := Open(WithLoadParallelism(2))
	db.MustExecSQL(`create table orders (id integer, doc xml)`)
	db.MustExecSQL(`create index li_price on orders(doc) using xmlpattern '//lineitem/@price' as double`)
	// A resident corpus so queries always have rows to chew on.
	if _, err := db.LoadXMLDir("orders", dir); err != nil {
		t.Fatal(err)
	}
	base, _, err := db.QueryXQuery(loadQueries[0])
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for q := 0; q < 3; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, _, err := db.QueryXQuery(loadQueries[0])
				if err != nil {
					t.Errorf("query during load: %v", err)
					return
				}
				// Loads only add multiples of the base corpus, so the
				// row count is always a multiple of the base count.
				if base.Len() == 0 || res.Len()%base.Len() != 0 {
					t.Errorf("torn read: %d rows, base %d", res.Len(), base.Len())
					return
				}
			}
		}()
	}
	for i := 0; i < 3; i++ {
		if _, err := db.LoadXMLDir("orders", dir); err != nil {
			t.Fatalf("load %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestInsertValidatedChecksShapeFirst: a wrong-shaped table fails before
// the document is parsed, so even an unparseable document reports the
// table error.
func TestInsertValidatedChecksShapeFirst(t *testing.T) {
	db := Open()
	db.MustExecSQL(`create table flat (a integer, b integer)`)
	err := db.InsertValidated("flat", 1, "<not even xml", nil)
	if err == nil || !strings.Contains(err.Error(), "(key, xml) table") {
		t.Fatalf("err = %v, want the table-shape error, not a parse error", err)
	}
}
