module github.com/xqdb/xqdb

go 1.22
