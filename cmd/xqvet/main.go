// Command xqvet is the engine's custom vet: a multichecker running the
// internal/analyzers suite over the given packages. It enforces the
// project invariants a human reviewer used to enforce by checklist —
// guard checks inside scan loops, posting lists instead of ad-hoc doc
// sets, atomics never mixed with plain access, no callbacks or sends
// under a held lock, no map-ordered user-visible output.
//
//	xqvet ./...          # analyze packages (exit 1 on findings)
//	xqvet -codes         # list the analyzers and what each enforces
//
// Findings print as file:line:col: [code] message. A finding is
// suppressed by an `//xqvet:<code>-ok <reason>` comment (guardloop also
// accepts `//xqvet:unbounded-ok`) on the flagged line or the line
// above; the reason is the review-facing justification.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"github.com/xqdb/xqdb/internal/analyzers"
	"github.com/xqdb/xqdb/internal/analyzers/analysis"
	"github.com/xqdb/xqdb/internal/analyzers/load"
)

func main() {
	os.Exit(run(".", os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: dir is the working directory for
// package loading (the integration test points it at a fixture module).
func run(dir string, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("xqvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	codes := fs.Bool("codes", false, "list the analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *codes {
		for _, a := range analyzers.All {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := load.Packages(dir, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "xqvet:", err)
		return 2
	}

	type finding struct {
		pos  string
		code string
		msg  string
	}
	var findings []finding
	for _, pkg := range pkgs {
		for _, a := range analyzers.All {
			pass := &analysis.Pass{
				Analyzer: a, Fset: pkg.Fset, Files: pkg.Files,
				Pkg: pkg.Types, TypesInfo: pkg.TypesInfo,
			}
			pass.Report = func(d analysis.Diagnostic) {
				findings = append(findings, finding{
					pos:  pkg.Fset.Position(d.Pos).String(),
					code: a.Name,
					msg:  d.Message,
				})
			}
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(stderr, "xqvet: %s: %s: %v\n", a.Name, pkg.PkgPath, err)
				return 2
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].pos != findings[j].pos {
			return findings[i].pos < findings[j].pos
		}
		return findings[i].code < findings[j].code
	})
	for _, f := range findings {
		fmt.Fprintf(stdout, "%s: [%s] %s\n", f.pos, f.code, f.msg)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "xqvet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
