// Command xqvet is the engine's custom vet: a multichecker running the
// internal/analyzers suite over the given packages. It enforces the
// project invariants a human reviewer used to enforce by checklist —
// guard checks inside scan loops, posting lists instead of ad-hoc doc
// sets, atomics never mixed with plain access, no callbacks or sends
// under a held lock, no map-ordered user-visible output, exhaustive
// stats merging, complete cache keys, an acyclic lock order, and a full
// equivalence knob matrix.
//
//	xqvet ./...          # analyze packages (exit 1 on findings)
//	xqvet -json ./...    # findings + per-analyzer timings as JSON
//	xqvet -codes         # list the analyzers and what each enforces
//
// Findings print as file:line:col: [code] message. A finding is
// suppressed by an `//xqvet:<code>-ok <reason>` comment (guardloop also
// accepts `//xqvet:unbounded-ok`) on the flagged line or the line
// above; the reason is the review-facing justification.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"github.com/xqdb/xqdb/internal/analyzers"
	"github.com/xqdb/xqdb/internal/analyzers/analysis"
	"github.com/xqdb/xqdb/internal/analyzers/load"
)

func main() {
	os.Exit(run(".", os.Args[1:], os.Stdout, os.Stderr))
}

// finding is one diagnostic, in the JSON shape CI surfaces.
type finding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Code    string `json:"code"`
	Message string `json:"message"`
}

// timing is one analyzer's wall-clock total across all packages.
type timing struct {
	Analyzer string  `json:"analyzer"`
	Millis   float64 `json:"ms"`
}

// report is the -json document: findings sorted by position then code,
// timings in analyzer order.
type report struct {
	Packages int       `json:"packages"`
	Findings []finding `json:"findings"`
	Timings  []timing  `json:"timings"`
}

// run is the testable entry point: dir is the working directory for
// package loading (the integration test points it at a fixture module).
func run(dir string, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("xqvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	codes := fs.Bool("codes", false, "list the analyzers and exit")
	asJSON := fs.Bool("json", false, "emit findings and per-analyzer timings as JSON")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *codes {
		for _, a := range analyzers.All {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := load.Packages(dir, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "xqvet:", err)
		return 2
	}

	var findings []finding
	elapsed := map[string]time.Duration{}
	for _, pkg := range pkgs {
		for _, a := range analyzers.All {
			pass := &analysis.Pass{
				Analyzer: a, Fset: pkg.Fset, Files: pkg.Files,
				Pkg: pkg.Types, TypesInfo: pkg.TypesInfo,
			}
			pass.Report = func(d analysis.Diagnostic) {
				p := pkg.Fset.Position(d.Pos)
				findings = append(findings, finding{
					File: p.Filename, Line: p.Line, Col: p.Column,
					Code: a.Name, Message: d.Message,
				})
			}
			start := time.Now()
			err := a.Run(pass)
			elapsed[a.Name] += time.Since(start)
			if err != nil {
				fmt.Fprintf(stderr, "xqvet: %s: %s: %v\n", a.Name, pkg.PkgPath, err)
				return 2
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Code < b.Code
	})

	if *asJSON {
		rep := report{Packages: len(pkgs), Findings: findings}
		for _, a := range analyzers.All {
			rep.Timings = append(rep.Timings, timing{
				Analyzer: a.Name,
				Millis:   float64(elapsed[a.Name].Microseconds()) / 1000,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(stderr, "xqvet:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintf(stdout, "%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Col, f.Code, f.Message)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "xqvet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
