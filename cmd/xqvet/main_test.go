package main

import (
	"bytes"
	"reflect"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// codeRe extracts the diagnostic code of one `pos: [code] msg` line.
var codeRe = regexp.MustCompile(`(?m)^\S+: \[(\w+)\]`)

// The quarantined badmod fixture plants exactly one violation per
// analyzer; xqvet pointed at it must exit 1 and report exactly those
// diagnostic codes.
func TestBadModuleOneViolationPerAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run("testdata/badmod", nil, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	var got []string
	for _, m := range codeRe.FindAllStringSubmatch(stdout.String(), -1) {
		got = append(got, m[1])
	}
	sort.Strings(got)
	want := []string{"atomicfield", "docset", "guardloop", "lockescape", "maporder"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("diagnostic codes = %v, want %v\noutput:\n%s", got, want, stdout.String())
	}
	if !strings.Contains(stderr.String(), "5 finding(s)") {
		t.Fatalf("stderr summary missing: %s", stderr.String())
	}
}

// The analyzer package itself must be xqvet-clean, and -codes must list
// every analyzer without loading any packages.
func TestCodesFlagListsAllAnalyzers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(".", []string{"-codes"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-codes exit = %d, stderr: %s", code, stderr.String())
	}
	for _, name := range []string{"atomicfield", "docset", "guardloop", "lockescape", "maporder"} {
		if !strings.Contains(stdout.String(), name) {
			t.Fatalf("-codes output missing %s:\n%s", name, stdout.String())
		}
	}
}

func TestCleanPackageExitsZero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(".", nil, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d over cmd/xqvet itself\nstdout: %s\nstderr: %s",
			code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Fatalf("clean run printed findings:\n%s", stdout.String())
	}
}
