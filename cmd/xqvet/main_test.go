package main

import (
	"bytes"
	"encoding/json"
	"reflect"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// codeRe extracts the diagnostic code of one `pos: [code] msg` line.
var codeRe = regexp.MustCompile(`(?m)^\S+: \[(\w+)\]`)

// allCodes is every analyzer in the suite, in diagnostic-code order.
var allCodes = []string{
	"atomicfield", "cachekey", "docset", "guardloop", "knobmatrix",
	"lockescape", "lockorder", "maporder", "statsmerge",
}

// The quarantined badmod fixture plants exactly one violation per
// analyzer; xqvet pointed at it must exit 1 and report exactly those
// diagnostic codes.
func TestBadModuleOneViolationPerAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run("testdata/badmod", nil, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	var got []string
	for _, m := range codeRe.FindAllStringSubmatch(stdout.String(), -1) {
		got = append(got, m[1])
	}
	sort.Strings(got)
	if !reflect.DeepEqual(got, allCodes) {
		t.Fatalf("diagnostic codes = %v, want %v\noutput:\n%s", got, allCodes, stdout.String())
	}
	if !strings.Contains(stderr.String(), "9 finding(s)") {
		t.Fatalf("stderr summary missing: %s", stderr.String())
	}
	// The statsmerge regression shape specifically: the deliberately
	// unmerged synthetic counter is reported by name.
	if !strings.Contains(stdout.String(), "execStats.rowsScanned is not referenced") {
		t.Fatalf("statsmerge did not flag the unmerged counter:\n%s", stdout.String())
	}
}

// -json must carry the same findings as the text mode, sorted, with a
// per-analyzer timing entry for every analyzer in the suite.
func TestJSONReport(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run("testdata/badmod", []string{"-json"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr: %s", code, stderr.String())
	}
	var rep struct {
		Packages int `json:"packages"`
		Findings []struct {
			File string `json:"file"`
			Line int    `json:"line"`
			Code string `json:"code"`
		} `json:"findings"`
		Timings []struct {
			Analyzer string  `json:"analyzer"`
			Millis   float64 `json:"ms"`
		} `json:"timings"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, stdout.String())
	}
	if rep.Packages != 1 || len(rep.Findings) != len(allCodes) {
		t.Fatalf("packages = %d, findings = %d, want 1 and %d", rep.Packages, len(rep.Findings), len(allCodes))
	}
	var got, timed []string
	for _, f := range rep.Findings {
		got = append(got, f.Code)
		if f.File == "" || f.Line == 0 {
			t.Fatalf("finding missing position: %+v", f)
		}
	}
	sort.Strings(got)
	if !reflect.DeepEqual(got, allCodes) {
		t.Fatalf("JSON codes = %v, want %v", got, allCodes)
	}
	for _, tm := range rep.Timings {
		timed = append(timed, tm.Analyzer)
		if tm.Millis < 0 {
			t.Fatalf("negative timing: %+v", tm)
		}
	}
	sort.Strings(timed)
	if !reflect.DeepEqual(timed, allCodes) {
		t.Fatalf("JSON timings cover %v, want %v", timed, allCodes)
	}
}

// The analyzer package itself must be xqvet-clean, and -codes must list
// every analyzer without loading any packages.
func TestCodesFlagListsAllAnalyzers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(".", []string{"-codes"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-codes exit = %d, stderr: %s", code, stderr.String())
	}
	for _, name := range allCodes {
		if !strings.Contains(stdout.String(), name) {
			t.Fatalf("-codes output missing %s:\n%s", name, stdout.String())
		}
	}
}

func TestCleanPackageExitsZero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(".", nil, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d over cmd/xqvet itself\nstdout: %s\nstderr: %s",
			code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Fatalf("clean run printed findings:\n%s", stdout.String())
	}
}

// The whole repository — internal packages AND the cmd/... mains — must
// stay xqvet-clean: every true positive the suite ever found is either
// fixed or carries an inline //xqvet:<code>-ok justification.
func TestWholeRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks every package")
	}
	var stdout, stderr bytes.Buffer
	if code := run("../..", nil, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d over the repository\nstdout: %s\nstderr: %s",
			code, stdout.String(), stderr.String())
	}
}
