// Package badmod plants exactly one violation of each xqvet invariant;
// the cmd/xqvet integration test asserts one diagnostic per analyzer.
// It is a standalone module (own go.mod) so the go tool ignores it from
// the repo root and xqvet can be pointed at it as a quarantined target.
package badmod

import (
	"sync"
	"sync/atomic"
)

// guardloop: a B+Tree-style leaf-chain walk that never consults a guard.
type leaf struct {
	next *leaf
	keys [][]byte
}

func countKeys(n *leaf) int {
	total := 0
	for ; n != nil; n = n.next {
		total += len(n.keys)
	}
	return total
}

// docset: an ad-hoc map-shaped document set.
func distinctDocs(ids []uint32) int {
	seen := map[uint32]bool{}
	for _, id := range ids {
		seen[id] = true
	}
	return len(seen)
}

// atomicfield: a field accessed both atomically and plainly.
type stats struct {
	probes int64
}

func (s *stats) inc() {
	atomic.AddInt64(&s.probes, 1)
}

func (s *stats) read() int64 {
	return s.probes
}

// lockescape: a user callback invoked while the mutex is held.
type store struct {
	mu     sync.Mutex
	rows   []int
	OnSlow func(int)
}

func (st *store) scan() {
	st.mu.Lock()
	st.OnSlow(len(st.rows))
	st.mu.Unlock()
}

// maporder: ordered output assembled in map-iteration order.
func labels(set map[string]bool) []string {
	var out []string
	for name := range set {
		out = append(out, name)
	}
	return out
}
