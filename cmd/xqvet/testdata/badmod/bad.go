// Package badmod plants exactly one violation of each xqvet invariant;
// the cmd/xqvet integration test asserts one diagnostic per analyzer.
// It is a standalone module (own go.mod) so the go tool ignores it from
// the repo root and xqvet can be pointed at it as a quarantined target.
package badmod

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// guardloop: a B+Tree-style leaf-chain walk that never consults a guard.
type leaf struct {
	next *leaf
	keys [][]byte
}

func countKeys(n *leaf) int {
	total := 0
	for ; n != nil; n = n.next {
		total += len(n.keys)
	}
	return total
}

// docset: an ad-hoc map-shaped document set.
func distinctDocs(ids []uint32) int {
	seen := map[uint32]bool{}
	for _, id := range ids {
		seen[id] = true
	}
	return len(seen)
}

// atomicfield: a field accessed both atomically and plainly.
type stats struct {
	probes int64
}

func (s *stats) inc() {
	atomic.AddInt64(&s.probes, 1)
}

func (s *stats) read() int64 {
	return s.probes
}

// lockescape: a user callback invoked while the mutex is held.
type store struct {
	mu     sync.Mutex
	rows   []int
	OnSlow func(int)
}

func (st *store) scan() {
	st.mu.Lock()
	st.OnSlow(len(st.rows))
	st.mu.Unlock()
}

// maporder: ordered output assembled in map-iteration order.
func labels(set map[string]bool) []string {
	var out []string
	for name := range set {
		out = append(out, name)
	}
	return out
}

// statsmerge: a counter added to the struct but not to its merge — the
// parallel shard fold drops it silently.
type execStats struct {
	probes      int
	rowsScanned int
}

func (s *execStats) merge(o *execStats) {
	s.probes += o.probes
}

// Summary renders both fields; only the merge is incomplete.
func (s *execStats) Summary() string {
	return fmt.Sprintf("probes=%d rows=%d", s.probes, s.rowsScanned)
}

// cachekey: the derivation covers the pattern but ignores the limit,
// so two scans differing only in limit share a cache entry.
type resultCache struct {
	items map[string]int
}

func (c *resultCache) get(k string) (int, bool) {
	v, ok := c.items[k]
	return v, ok
}

func scanKey(pat string) string { return "scan:" + pat }

func cachedScan(c *resultCache, pat string, limit int) int {
	k := scanKey(pat)
	v, _ := c.get(k)
	if v > limit {
		return limit
	}
	return v
}

// lockorder: a helper re-acquires the mutex its caller already holds.
type gate struct {
	mu sync.Mutex
	n  int
}

func (g *gate) bump() {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

func (g *gate) double() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.bump()
}

// knobmatrix: a boolean knob with no equivalence matrix anywhere (the
// module has no tests at all).
type scanOptions struct {
	skipVerify bool
}
