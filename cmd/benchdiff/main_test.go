package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, name, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const oldReport = `{
  "benchmarks": [
    {"name": "BenchmarkA", "ns_per_op": 1000, "allocs_per_op": 80},
    {"name": "BenchmarkB", "ns_per_op": 2000, "allocs_per_op": 10},
    {"name": "BenchmarkGone", "ns_per_op": 5, "allocs_per_op": 1}
  ],
  "pairs": [
    {"kind": "map-vs-postings", "baseline": "BenchmarkA", "ratio": 1.2}
  ]
}`

const newReport = `{
  "benchmarks": [
    {"name": "BenchmarkA", "ns_per_op": 500, "allocs_per_op": 10},
    {"name": "BenchmarkB", "ns_per_op": 3000, "allocs_per_op": 10},
    {"name": "BenchmarkFresh", "ns_per_op": 42, "allocs_per_op": 2}
  ],
  "pairs": [
    {"kind": "map-vs-postings", "baseline": "BenchmarkA", "ratio": 1.7},
    {"kind": "cold-vs-cached", "baseline": "BenchmarkCold", "ratio": 1.1}
  ]
}`

// The diff must mark B (3000/2000 = 1.5x) as the one regression, A as an
// improvement, and render Fresh and the new pair with no baseline column.
func TestDiffFlagsRegressionsAndImprovements(t *testing.T) {
	oldPath := writeReport(t, "old.json", oldReport)
	newPath := writeReport(t, "new.json", newReport)
	var out strings.Builder
	code, err := run([]string{"-old", oldPath, "-new", newPath}, &out)
	if err != nil || code != 0 {
		t.Fatalf("ungated run must exit 0: code=%d err=%v", code, err)
	}
	got := out.String()
	for _, want := range []string{
		"BenchmarkB | 2000 | 3000 | 1.50x", "⚠️ slower",
		"BenchmarkA | 1000 | 500 | 0.50x", "✅ faster",
		"BenchmarkFresh | – | 42", "new",
		"map-vs-postings/BenchmarkA | 1.20x | 1.70x",
		"cold-vs-cached/BenchmarkCold | – | 1.10x",
		"1 benchmark(s) regressed past 1.10x",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("summary missing %q:\n%s", want, got)
		}
	}
}

// Entries only the baseline knows — a deleted benchmark, a retired
// experiment pair — must surface as removed rows plus a soft-skip note,
// not vanish from the diff or fail the run.
func TestOldOnlyEntriesAreSoftSkipped(t *testing.T) {
	oldPath := writeReport(t, "old.json", `{
	  "benchmarks": [
	    {"name": "BenchmarkGone", "ns_per_op": 5, "allocs_per_op": 1},
	    {"name": "BenchmarkA", "ns_per_op": 1000, "allocs_per_op": 80}
	  ],
	  "pairs": [
	    {"kind": "idx-vs-scan", "baseline": "BenchmarkRetired", "ratio": 3.5}
	  ]
	}`)
	newPath := writeReport(t, "new.json", `{
	  "benchmarks": [
	    {"name": "BenchmarkA", "ns_per_op": 1000, "allocs_per_op": 80}
	  ],
	  "pairs": []
	}`)
	var out strings.Builder
	code, err := run([]string{"-old", oldPath, "-new", newPath, "-gate"}, &out)
	if err != nil || code != 0 {
		t.Fatalf("old-only entries must not fail even gated: code=%d err=%v", code, err)
	}
	got := out.String()
	for _, want := range []string{
		"BenchmarkGone | 5 | – | – | 1→– | removed",
		"idx-vs-scan/BenchmarkRetired | 3.50x | – (removed)",
		"1 benchmark(s) present only in the baseline; skipped (removed or renamed).",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("summary missing %q:\n%s", want, got)
		}
	}
}

// -gate turns the regression count into the exit code; a looser
// threshold that clears every benchmark must stay green even gated.
func TestGateAndThreshold(t *testing.T) {
	oldPath := writeReport(t, "old.json", oldReport)
	newPath := writeReport(t, "new.json", newReport)
	var out strings.Builder
	code, err := run([]string{"-old", oldPath, "-new", newPath, "-gate"}, &out)
	if err != nil || code != 1 {
		t.Fatalf("gated regression must exit 1: code=%d err=%v", code, err)
	}
	out.Reset()
	code, err = run([]string{"-old", oldPath, "-new", newPath, "-gate", "-threshold", "2.0"}, &out)
	if err != nil || code != 0 {
		t.Fatalf("1.5x under a 2.0x threshold must pass the gate: code=%d err=%v", code, err)
	}
	if !strings.Contains(out.String(), "No benchmark regressed past 2.00x") {
		t.Errorf("summary should report a clean pass:\n%s", out.String())
	}
}

// -fail-over is the bench-gate mode: an injected regression — either a
// benchmark slowdown or a shrinking pair ratio — must flip the exit code.
func TestFailOverGatesOnInjectedRegression(t *testing.T) {
	oldPath := writeReport(t, "old.json", oldReport)

	// Injected benchmark regression: B slows 2000 -> 3000 (1.5x).
	slowPath := writeReport(t, "slow.json", newReport)
	var out strings.Builder
	code, err := run([]string{"-old", oldPath, "-new", slowPath, "-fail-over", "20"}, &out)
	if err != nil || code != 1 {
		t.Fatalf("injected 1.5x slowdown must fail -fail-over 20: code=%d err=%v", code, err)
	}
	if !strings.Contains(out.String(), "threshold 1.20x") {
		t.Errorf("-fail-over should override -threshold in the rendered table:\n%s", out.String())
	}

	// Injected pair regression: the map-vs-postings speedup collapses
	// 1.2x -> 0.8x while every benchmark holds steady.
	pairPath := writeReport(t, "pair.json", `{
	  "benchmarks": [
	    {"name": "BenchmarkA", "ns_per_op": 1000, "allocs_per_op": 80},
	    {"name": "BenchmarkB", "ns_per_op": 2000, "allocs_per_op": 10},
	    {"name": "BenchmarkGone", "ns_per_op": 5, "allocs_per_op": 1}
	  ],
	  "pairs": [
	    {"kind": "map-vs-postings", "baseline": "BenchmarkA", "ratio": 0.8}
	  ]
	}`)
	out.Reset()
	code, err = run([]string{"-old", oldPath, "-new", pairPath, "-fail-over", "20"}, &out)
	if err != nil || code != 1 {
		t.Fatalf("injected pair-ratio collapse must fail -fail-over 20: code=%d err=%v", code, err)
	}
	for _, want := range []string{"⚠️ regressed", "1 pair ratio(s) regressed past 1.20x"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("summary missing %q:\n%s", want, out.String())
		}
	}

	// The same artifacts pass a gate loose enough to absorb the drift,
	// and the ungated default never fails regardless.
	out.Reset()
	if code, err = run([]string{"-old", oldPath, "-new", pairPath, "-fail-over", "60"}, &out); err != nil || code != 0 {
		t.Fatalf("1.5x shrink under a 60%% gate must pass: code=%d err=%v", code, err)
	}
	out.Reset()
	if code, err = run([]string{"-old", oldPath, "-new", pairPath}, &out); err != nil || code != 0 {
		t.Fatalf("ungated run must exit 0: code=%d err=%v", code, err)
	}
	if code, _ = run([]string{"-old", oldPath, "-new", pairPath, "-fail-over", "-5"}, &out); code != 2 {
		t.Fatalf("negative -fail-over must be a usage error: code=%d", code)
	}
}

// A missing baseline is the first-run case: report it, exit 0. A missing
// or corrupt current artifact is a real failure.
func TestMissingInputs(t *testing.T) {
	newPath := writeReport(t, "new.json", newReport)
	var out strings.Builder
	code, err := run([]string{"-old", filepath.Join(t.TempDir(), "nope.json"), "-new", newPath}, &out)
	if err != nil || code != 0 {
		t.Fatalf("missing baseline must be a soft skip: code=%d err=%v", code, err)
	}
	if !strings.Contains(out.String(), "No baseline artifact") {
		t.Errorf("skip note missing:\n%s", out.String())
	}
	if code, err = run([]string{"-new", filepath.Join(t.TempDir(), "nope.json")}, &out); err == nil || code != 2 {
		t.Fatalf("missing current artifact must fail: code=%d err=%v", code, err)
	}
	bad := writeReport(t, "bad.json", "{not json")
	if code, err = run([]string{"-new", bad}, &out); err == nil || code != 2 {
		t.Fatalf("corrupt current artifact must fail: code=%d err=%v", code, err)
	}
}
