// Command benchdiff compares two benchjson artifacts and renders a
// markdown summary of how each benchmark and experiment-pair ratio moved
// between them. It exists for the bench-trend CI job: every run diffs its
// fresh BENCH_PR2.json against the previous run's artifact, so drift in
// the probe pipeline or the index ratios is visible on the PR without
// gating it (shared runners are too noisy to fail a build over).
//
//	go run ./cmd/benchdiff -old prev/BENCH_PR2.json -new BENCH_PR2.json
//
// A benchmark is flagged as a regression when new ns/op exceeds old
// ns/op by more than -threshold (default 1.10, i.e. 10% slower). The
// exit code stays 0 unless -gate or -fail-over is set; a missing or
// unreadable -old baseline prints a note and exits 0 so the first run
// of a fresh repository does not fail.
//
// -fail-over <pct> is the gating mode the bench-gate CI job runs:
//
//	go run ./cmd/benchdiff -old prev.json -new cur.json -fail-over 20
//
// exits non-zero when any benchmark slows down by more than pct
// percent, or any tracked experiment pair's speedup ratio shrinks by
// more than pct percent. It overrides -threshold (factor 1+pct/100) so
// the rendered table and the gate always agree.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// Benchmark and Pair mirror the cmd/benchjson artifact layout; only the
// fields the diff needs are decoded.
type Benchmark struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type Pair struct {
	Kind     string  `json:"kind"`
	Baseline string  `json:"baseline"`
	Ratio    float64 `json:"ratio"`
}

type Report struct {
	Benchmarks []Benchmark `json:"benchmarks"`
	Pairs      []Pair      `json:"pairs"`
}

func load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// diff renders the markdown comparison and reports how many benchmarks
// regressed past the threshold and how many tracked pairs' speedup
// ratios shrank by more than the same factor.
func diff(old, cur *Report, threshold float64, w io.Writer) (benchRegr, pairRegr int) {
	oldBench := make(map[string]Benchmark, len(old.Benchmarks))
	for _, b := range old.Benchmarks {
		oldBench[b.Name] = b
	}

	fmt.Fprintf(w, "### Benchmark diff (threshold %.2fx)\n\n", threshold)
	fmt.Fprintln(w, "| benchmark | old ns/op | new ns/op | ratio | allocs old→new | |")
	fmt.Fprintln(w, "|---|---:|---:|---:|---:|---|")
	curNames := make(map[string]bool, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		curNames[b.Name] = true
		prev, ok := oldBench[b.Name]
		if !ok || prev.NsPerOp == 0 {
			fmt.Fprintf(w, "| %s | – | %.0f | – | –→%d | new |\n", b.Name, b.NsPerOp, b.AllocsPerOp)
			continue
		}
		ratio := b.NsPerOp / prev.NsPerOp
		note := ""
		switch {
		case ratio > threshold:
			note = "⚠️ slower"
			benchRegr++
		case ratio < 1/threshold:
			note = "✅ faster"
		}
		fmt.Fprintf(w, "| %s | %.0f | %.0f | %.2fx | %d→%d | %s |\n",
			b.Name, prev.NsPerOp, b.NsPerOp, ratio, prev.AllocsPerOp, b.AllocsPerOp, note)
	}
	// Benchmarks only the baseline knows (deleted or renamed since the
	// previous run) are a soft skip: row them as removed so the diff never
	// pretends they existed in the new run, and count them in a note.
	removed := make([]string, 0)
	for name := range oldBench {
		if !curNames[name] {
			removed = append(removed, name)
		}
	}
	sort.Strings(removed)
	for _, name := range removed {
		prev := oldBench[name]
		fmt.Fprintf(w, "| %s | %.0f | – | – | %d→– | removed |\n", name, prev.NsPerOp, prev.AllocsPerOp)
	}

	oldPairs := make(map[string]Pair, len(old.Pairs))
	for _, p := range old.Pairs {
		oldPairs[p.Kind+"/"+p.Baseline] = p
	}
	keys := make([]string, 0, len(cur.Pairs))
	curPairs := make(map[string]Pair, len(cur.Pairs))
	for _, p := range cur.Pairs {
		k := p.Kind + "/" + p.Baseline
		keys = append(keys, k)
		curPairs[k] = p
	}
	for k := range oldPairs {
		if _, ok := curPairs[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	if len(keys) > 0 {
		fmt.Fprint(w, "\n### Experiment-pair speedup ratios\n\n")
		fmt.Fprintln(w, "| pair | old ratio | new ratio | |")
		fmt.Fprintln(w, "|---|---:|---:|---|")
		for _, k := range keys {
			p, inCur := curPairs[k]
			prev, inOld := oldPairs[k]
			switch {
			case !inCur:
				fmt.Fprintf(w, "| %s | %.2fx | – (removed) | |\n", k, prev.Ratio)
			case inOld && !math.IsNaN(prev.Ratio):
				// A pair regresses when the variant's speedup shrinks by
				// the same factor that flags a single benchmark: the win
				// the pair exists to protect is evaporating.
				note := ""
				if prev.Ratio > 0 && p.Ratio > 0 && prev.Ratio/p.Ratio > threshold {
					note = "⚠️ regressed"
					pairRegr++
				}
				fmt.Fprintf(w, "| %s | %.2fx | %.2fx | %s |\n", k, prev.Ratio, p.Ratio, note)
			default:
				fmt.Fprintf(w, "| %s | – | %.2fx | |\n", k, p.Ratio)
			}
		}
	}
	if len(removed) > 0 {
		fmt.Fprintf(w, "\n%d benchmark(s) present only in the baseline; skipped (removed or renamed).\n", len(removed))
	}
	switch {
	case benchRegr > 0 && pairRegr > 0:
		fmt.Fprintf(w, "\n%d benchmark(s) and %d pair ratio(s) regressed past %.2fx.\n", benchRegr, pairRegr, threshold)
	case benchRegr > 0:
		fmt.Fprintf(w, "\n%d benchmark(s) regressed past %.2fx.\n", benchRegr, threshold)
	case pairRegr > 0:
		fmt.Fprintf(w, "\n%d pair ratio(s) regressed past %.2fx.\n", pairRegr, threshold)
	default:
		fmt.Fprintf(w, "\nNo benchmark regressed past %.2fx.\n", threshold)
	}
	return benchRegr, pairRegr
}

func run(args []string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	oldPath := fs.String("old", "", "baseline benchjson artifact (previous run)")
	newPath := fs.String("new", "BENCH_PR2.json", "current benchjson artifact")
	threshold := fs.Float64("threshold", 1.10, "ns/op ratio above which a benchmark counts as regressed")
	gate := fs.Bool("gate", false, "exit non-zero when benchmark regressions exceed the threshold")
	failOver := fs.Float64("fail-over", 0,
		"gating percentage: exit non-zero when any benchmark slows down, or any tracked pair's speedup ratio shrinks, by more than this percent (0 disables; overrides -threshold)")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if *failOver < 0 {
		return 2, fmt.Errorf("-fail-over must be non-negative, got %v", *failOver)
	}
	if *failOver > 0 {
		*threshold = 1 + *failOver/100
	}
	cur, err := load(*newPath)
	if err != nil {
		return 2, err
	}
	old, err := load(*oldPath)
	if err != nil {
		// First run of a fresh repo, or the previous artifact expired:
		// nothing to diff against is not a failure.
		fmt.Fprintf(stdout, "### Benchmark diff\n\nNo baseline artifact (%v); skipping diff.\n", err)
		return 0, nil
	}
	benchRegr, pairRegr := diff(old, cur, *threshold, stdout)
	if *failOver > 0 && benchRegr+pairRegr > 0 {
		return 1, nil
	}
	if *gate && benchRegr > 0 {
		return 1, nil
	}
	return 0, nil
}

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
	}
	os.Exit(code)
}
