// Command benchjson converts `go test -bench` text output into a JSON
// benchmark artifact. It reads the benchmark log from stdin (or from file
// arguments), extracts name, iterations, ns/op, B/op, and allocs/op for
// every benchmark line, and pairs up the experiment variants the repo's
// benchmarks encode in their names:
//
//   - scan vs indexed        ("Scan"/"scan" ↔ "Indexed"/"indexed")
//   - unprepared vs prepared ("Unprepared" ↔ "Prepared")
//   - serial vs parallel     ("par=1" ↔ "par=8")
//   - map vs posting lists   ("MapSets" ↔ "PostingLists")
//   - cold vs cached probes  ("Cold" ↔ "Cached")
//   - synopsis off vs on     ("SynopsisOff" ↔ "SynopsisOn")
//
// Each pair records the speedup ratio baseline_ns / variant_ns — above 1.0
// means the variant (indexed, prepared, parallel) is faster. Usage:
//
//	go test -run '^$' -bench . -benchmem . > bench.txt
//	go run ./cmd/benchjson -o BENCH_PR2.json bench.txt
//
// -agg median collapses duplicate benchmark names — several `-count`
// runs, or concatenated bench.txt files — into one entry per name by
// taking the per-field median. The bench-gate CI job runs its subset
// three times and aggregates this way so one noisy run on a shared
// runner cannot fake (or mask) a regression.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed `go test -bench` result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Pair relates a baseline benchmark to its optimized variant. Ratio is
// baseline ns/op divided by variant ns/op: the variant's speedup factor.
type Pair struct {
	Kind     string  `json:"kind"`
	Baseline string  `json:"baseline"`
	Variant  string  `json:"variant"`
	Ratio    float64 `json:"ratio"`
}

// Report is the JSON artifact layout.
type Report struct {
	Benchmarks []Benchmark `json:"benchmarks"`
	Pairs      []Pair      `json:"pairs"`
}

// benchLine matches `go test -bench` output, including sub-benchmarks
// (slashes in the name) and the -benchmem columns when present:
//
//	BenchmarkE1_Q1NumericScan-8    100    1234567 ns/op    4096 B/op    12 allocs/op
//	BenchmarkE12_Scaling/docs=4000/scan/par=8-8    5    9876543 ns/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+(\d+) allocs/op)?`)

func parse(r io.Reader) ([]Benchmark, error) {
	var out []Benchmark
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		b := Benchmark{Name: m[1]}
		b.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		b.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			b.BytesPerOp, _ = strconv.ParseFloat(m[4], 64)
		}
		if m[5] != "" {
			b.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		out = append(out, b)
	}
	return out, sc.Err()
}

// pairRules maps a baseline benchmark name to its variant's name. Order
// matters only for the kind label reported when a name matches several
// rules (it cannot, with the current naming scheme).
var pairRules = []struct {
	kind string
	from string
	to   string
}{
	{"scan-vs-indexed", "Scan", "Indexed"},
	{"scan-vs-indexed", "scan", "indexed"},
	{"unprepared-vs-prepared", "Unprepared", "Prepared"},
	{"serial-vs-parallel", "par=1", "par=8"},
	{"map-vs-postings", "MapSets", "PostingLists"},
	{"cold-vs-cached", "Cold", "Cached"},
	{"perrow-vs-streaming", "PerRowLoader", "StreamingPipeline"},
	{"nosynopsis-vs-synopsis", "SynopsisOff", "SynopsisOn"},
	{"docgranular-vs-nodegranular", "DocGranular", "NodeGranular"},
	{"fullwalk-vs-seeded", "FullWalk", "Seeded"},
}

// median of one numeric field across a group of same-name benchmarks.
func median(group []Benchmark, field func(Benchmark) float64) float64 {
	vals := make([]float64, len(group))
	for i, b := range group {
		vals[i] = field(b)
	}
	sort.Float64s(vals)
	if n := len(vals); n%2 == 1 {
		return vals[n/2]
	} else {
		return (vals[n/2-1] + vals[n/2]) / 2
	}
}

// aggregate collapses duplicate benchmark names into one entry per name.
// Mode "none" keeps every parsed line; "median" takes the per-field
// median in first-appearance order.
func aggregate(benches []Benchmark, mode string) ([]Benchmark, error) {
	switch mode {
	case "none":
		return benches, nil
	case "median":
	default:
		return nil, fmt.Errorf("unknown -agg mode %q (want none or median)", mode)
	}
	var order []string
	groups := make(map[string][]Benchmark)
	for _, b := range benches {
		if _, ok := groups[b.Name]; !ok {
			order = append(order, b.Name)
		}
		groups[b.Name] = append(groups[b.Name], b)
	}
	out := make([]Benchmark, 0, len(order))
	for _, name := range order {
		g := groups[name]
		out = append(out, Benchmark{
			Name:        name,
			Iterations:  int64(median(g, func(b Benchmark) float64 { return float64(b.Iterations) })),
			NsPerOp:     median(g, func(b Benchmark) float64 { return b.NsPerOp }),
			BytesPerOp:  median(g, func(b Benchmark) float64 { return b.BytesPerOp }),
			AllocsPerOp: int64(median(g, func(b Benchmark) float64 { return float64(b.AllocsPerOp) })),
		})
	}
	return out, nil
}

func pairs(benches []Benchmark) []Pair {
	byName := make(map[string]Benchmark, len(benches))
	for _, b := range benches {
		byName[b.Name] = b
	}
	seen := make(map[string]bool)
	// Non-nil so a run with no pairable benchmarks (a partial bench.out,
	// a -bench filter) still emits "pairs": [] rather than null.
	out := make([]Pair, 0)
	for _, b := range benches {
		for _, rule := range pairRules {
			if !strings.Contains(b.Name, rule.from) {
				continue
			}
			variant := strings.Replace(b.Name, rule.from, rule.to, 1)
			v, ok := byName[variant]
			if !ok || variant == b.Name || seen[b.Name+"|"+variant] {
				continue
			}
			seen[b.Name+"|"+variant] = true
			p := Pair{Kind: rule.kind, Baseline: b.Name, Variant: variant}
			if v.NsPerOp > 0 {
				p.Ratio = b.NsPerOp / v.NsPerOp
			}
			out = append(out, p)
		}
	}
	return out
}

func run(args []string, stdin io.Reader) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	outPath := fs.String("o", "BENCH_PR2.json", "output JSON path (- for stdout)")
	agg := fs.String("agg", "none", "duplicate-name aggregation: none keeps every line, median collapses repeated runs")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var benches []Benchmark
	if fs.NArg() == 0 {
		var err error
		if benches, err = parse(stdin); err != nil {
			return err
		}
	}
	for _, path := range fs.Args() {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		bs, err := parse(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		benches = append(benches, bs...)
	}
	if len(benches) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}
	benches, err := aggregate(benches, *agg)
	if err != nil {
		return err
	}
	report := Report{Benchmarks: benches, Pairs: pairs(benches)}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *outPath == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(*outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks, %d pairs -> %s\n",
		len(benches), len(report.Pairs), *outPath)
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdin); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
