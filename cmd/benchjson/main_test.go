package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestParseTruncated feeds a bench.out cut off mid-run: the trailing
// benchmark line stops mid-number (no ns/op), one line lacks the
// allocs/op column, and the PASS/ok footer is missing entirely. Every
// complete line must parse; the truncated one must be skipped, not
// mis-read.
func TestParseTruncated(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "truncated_bench.out"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	benches, err := parse(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 5 {
		t.Fatalf("want 5 complete benchmarks (truncated 6th skipped), got %d: %+v", len(benches), benches)
	}
	for _, b := range benches {
		if strings.HasSuffix(b.Name, "Prepared_Prepared") {
			t.Errorf("truncated line parsed as a benchmark: %+v", b)
		}
		if b.NsPerOp <= 0 {
			t.Errorf("%s: ns/op not parsed: %+v", b.Name, b)
		}
	}
	// The -benchmem columns are optional per line.
	if benches[0].AllocsPerOp != 12 || benches[0].BytesPerOp != 4096 {
		t.Errorf("benchmem columns not parsed: %+v", benches[0])
	}
	if benches[4].AllocsPerOp != 0 {
		t.Errorf("missing allocs column should stay zero: %+v", benches[4])
	}
}

// TestPairsPartial checks pairing over the truncated fixture: the
// scan/indexed and par=1/par=8 pairs are complete, while the prepared
// variant was lost to truncation, so no unprepared-vs-prepared pair may
// be invented.
func TestPairsPartial(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "truncated_bench.out"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	benches, err := parse(f)
	if err != nil {
		t.Fatal(err)
	}
	ps := pairs(benches)
	kinds := make(map[string]Pair)
	for _, p := range ps {
		kinds[p.Kind] = p
	}
	if p, ok := kinds["scan-vs-indexed"]; !ok || p.Ratio < 49 || p.Ratio > 51 {
		t.Errorf("scan-vs-indexed pair wrong: %+v", kinds)
	}
	if p, ok := kinds["serial-vs-parallel"]; !ok || p.Ratio < 3.9 || p.Ratio > 4.1 {
		t.Errorf("serial-vs-parallel pair wrong: %+v", kinds)
	}
	if _, ok := kinds["unprepared-vs-prepared"]; ok {
		t.Errorf("pair invented from a truncated variant: %+v", kinds)
	}
}

// TestPairsColdLoad: the ingestion pair rule relates the per-row loader
// baseline to the streaming pipeline variant.
func TestPairsColdLoad(t *testing.T) {
	in := strings.NewReader(
		"BenchmarkColdLoad_PerRowLoader-8        10  60000000 ns/op  24000000 B/op  350000 allocs/op\n" +
			"BenchmarkColdLoad_StreamingPipeline-8   10  20000000 ns/op   7000000 B/op   80000 allocs/op\n")
	benches, err := parse(in)
	if err != nil {
		t.Fatal(err)
	}
	ps := pairs(benches)
	if len(ps) != 1 {
		t.Fatalf("want one pair, got %+v", ps)
	}
	p := ps[0]
	if p.Kind != "perrow-vs-streaming" || p.Ratio < 2.9 || p.Ratio > 3.1 {
		t.Errorf("cold-load pair wrong: %+v", p)
	}
}

// TestPairsSynopsis: the path-synopsis pair rule relates the NoSynopsis
// baseline to the short-circuiting variant.
func TestPairsSynopsis(t *testing.T) {
	in := strings.NewReader(
		"BenchmarkSynopsisShortCircuit/SynopsisOff-8   500   90000 ns/op\n" +
			"BenchmarkSynopsisShortCircuit/SynopsisOn-8    500   45000 ns/op\n")
	benches, err := parse(in)
	if err != nil {
		t.Fatal(err)
	}
	ps := pairs(benches)
	if len(ps) != 1 {
		t.Fatalf("want one pair, got %+v", ps)
	}
	p := ps[0]
	if p.Kind != "nosynopsis-vs-synopsis" || p.Ratio < 1.9 || p.Ratio > 2.1 {
		t.Errorf("synopsis pair wrong: %+v", p)
	}
}

// TestAggregateMedian: -agg median collapses repeated runs per name,
// resists one noisy outlier, and preserves first-appearance order so
// pairing still works downstream.
func TestAggregateMedian(t *testing.T) {
	in := strings.NewReader(
		"BenchmarkX/SynopsisOff-8   100   1000 ns/op   64 B/op   2 allocs/op\n" +
			"BenchmarkX/SynopsisOn-8    100    500 ns/op   32 B/op   1 allocs/op\n" +
			"BenchmarkX/SynopsisOff-8   100   9000 ns/op   64 B/op   2 allocs/op\n" + // noisy outlier
			"BenchmarkX/SynopsisOn-8    100    510 ns/op   32 B/op   1 allocs/op\n" +
			"BenchmarkX/SynopsisOff-8   100   1100 ns/op   64 B/op   2 allocs/op\n" +
			"BenchmarkX/SynopsisOn-8    100    490 ns/op   32 B/op   1 allocs/op\n")
	benches, err := parse(in)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := aggregate(benches, "median")
	if err != nil {
		t.Fatal(err)
	}
	if len(agg) != 2 {
		t.Fatalf("want 2 aggregated benchmarks, got %+v", agg)
	}
	if agg[0].Name != "BenchmarkX/SynopsisOff" || agg[0].NsPerOp != 1100 {
		t.Errorf("median must shrug off the 9000ns outlier: %+v", agg[0])
	}
	if agg[1].Name != "BenchmarkX/SynopsisOn" || agg[1].NsPerOp != 500 {
		t.Errorf("odd-count median wrong: %+v", agg[1])
	}
	if agg[0].BytesPerOp != 64 || agg[0].AllocsPerOp != 2 {
		t.Errorf("benchmem medians wrong: %+v", agg[0])
	}
	ps := pairs(agg)
	if len(ps) != 1 || ps[0].Ratio < 2.1 || ps[0].Ratio > 2.3 {
		t.Errorf("pairing over aggregated medians wrong: %+v", ps)
	}

	// Even-count groups take the midpoint of the middle two.
	even, err := aggregate(benches[:4], "median")
	if err != nil {
		t.Fatal(err)
	}
	if even[0].NsPerOp != 5000 {
		t.Errorf("even-count median = %v, want 5000", even[0].NsPerOp)
	}

	if _, err := aggregate(benches, "mean"); err == nil {
		t.Error("unknown -agg mode must error")
	}
	same, err := aggregate(benches, "none")
	if err != nil || len(same) != len(benches) {
		t.Errorf("none must keep every line: %v %d", err, len(same))
	}
}

// TestRunEmitsEmptyPairsArray: a report with no pairable benchmarks must
// still be valid JSON with "pairs": [], not null, so downstream tooling
// can index into it unconditionally.
func TestRunEmitsEmptyPairsArray(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	in := strings.NewReader("BenchmarkLonely-8    100    1000 ns/op\n")
	if err := run([]string{"-o", out}, in); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("invalid JSON artifact: %v\n%s", err, data)
	}
	if !strings.Contains(string(data), `"pairs": []`) {
		t.Errorf("pairs should marshal as [], got:\n%s", data)
	}
	if len(rep.Benchmarks) != 1 || rep.Benchmarks[0].Name != "BenchmarkLonely" {
		t.Errorf("benchmarks: %+v", rep.Benchmarks)
	}
}

// TestRunRejectsEmptyInput: a bench.out with no benchmark lines at all
// (a run that crashed before the first benchmark) is an explicit error,
// not an empty artifact that would read as "no regressions".
func TestRunRejectsEmptyInput(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	err := run([]string{"-o", out}, strings.NewReader("goos: linux\nPASS\n"))
	if err == nil || !strings.Contains(err.Error(), "no benchmark lines") {
		t.Fatalf("want no-benchmark-lines error, got %v", err)
	}
	if _, statErr := os.Stat(out); statErr == nil {
		t.Error("no artifact should be written on empty input")
	}
}
