package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/xqdb/xqdb"
)

func TestRunStatementDispatch(t *testing.T) {
	db := xqdb.Open()
	var out strings.Builder
	runStatementTo(&out, db, `create table t (a integer, d xml)`, false)
	runStatementTo(&out, db, `insert into t values (1, '<x><y>7</y></x>')`, false)
	runStatementTo(&out, db, `select a from t`, true)
	runStatementTo(&out, db, `db2-fn:xmlcolumn("T.D")//y`, true)
	runStatementTo(&out, db, `select bogus syntax here`, false)
	got := out.String()
	for _, want := range []string{"row 1: 1", "row 1: <y>7</y>", "-- 1 rows", "error:"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestMetaCommands(t *testing.T) {
	db := xqdb.Open()
	db.MustExecSQL(`create table t (a integer, d xml)`)
	show := true
	var out strings.Builder
	if metaTo(&out, db, `\quit`, &show) {
		t.Error("\\quit should stop the loop")
	}
	if !metaTo(&out, db, `\stats off`, &show) || show {
		t.Error("\\stats off failed")
	}
	if !metaTo(&out, db, `\noindex on`, &show) || db.UseIndexes {
		t.Error("\\noindex on failed")
	}
	metaTo(&out, db, `\explain db2-fn:xmlcolumn("T.D")//y[z > 1]`, &show)
	if !strings.Contains(out.String(), "no XML indexes") {
		t.Errorf("explain output:\n%s", out.String())
	}
	out.Reset()
	metaTo(&out, db, `\help`, &show)
	if !strings.Contains(out.String(), "commands:") {
		t.Error("unknown meta should print help")
	}
}

func TestLoadScript(t *testing.T) {
	dir := t.TempDir()
	script := filepath.Join(dir, "setup.sql")
	if err := os.WriteFile(script, []byte(`
		create table t (a integer, d xml);
		insert into t values (1, '<x/>');
	`), 0o644); err != nil {
		t.Fatal(err)
	}
	db := xqdb.Open()
	show := false
	var out strings.Builder
	metaTo(&out, db, `\load `+script, &show)
	runStatementTo(&out, db, `select a from t`, false)
	if !strings.Contains(out.String(), "row 1: 1") {
		t.Errorf("load script failed:\n%s", out.String())
	}
}
