package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/xqdb/xqdb"
)

func TestRunStatementDispatch(t *testing.T) {
	db := xqdb.Open()
	var out strings.Builder
	runStatementTo(&out, db, `create table t (a integer, d xml)`, shellOpts{})
	runStatementTo(&out, db, `insert into t values (1, '<x><y>7</y></x>')`, shellOpts{})
	runStatementTo(&out, db, `select a from t`, shellOpts{stats: true})
	runStatementTo(&out, db, `db2-fn:xmlcolumn("T.D")//y`, shellOpts{stats: true})
	runStatementTo(&out, db, `select bogus syntax here`, shellOpts{})
	got := out.String()
	for _, want := range []string{"row 1: 1", "row 1: <y>7</y>", "-- 1 rows", "error:"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunStatementExplainAndTrace(t *testing.T) {
	db := xqdb.Open()
	var out strings.Builder
	runStatementTo(&out, db, `create table t (a integer, d xml)`, shellOpts{})
	runStatementTo(&out, db, `insert into t values (1, '<x><y>7</y></x>')`, shellOpts{})

	out.Reset()
	runStatementTo(&out, db, `explain select a from t`, shellOpts{})
	if !strings.Contains(out.String(), "plan: language=sql") {
		t.Errorf("EXPLAIN should dispatch to SQL and print a plan report:\n%s", out.String())
	}

	out.Reset()
	runStatementTo(&out, db, `select a from t`, shellOpts{trace: true})
	got := out.String()
	if !strings.Contains(got, "trace: plan") || !strings.Contains(got, "trace: scan") {
		t.Errorf("trace output missing spans:\n%s", got)
	}
}

func TestStatsLineShowsNodeGranularity(t *testing.T) {
	db := xqdb.Open()
	db.UseIndexes = true
	var out strings.Builder
	runStatementTo(&out, db, `create table t (a integer, d xml)`, shellOpts{})
	runStatementTo(&out, db, `insert into t values (1, '<x><y p="7"/><y p="1"/></x>')`, shellOpts{})
	runStatementTo(&out, db, `create index yp on t(d) using xmlpattern '//y/@p' as double`, shellOpts{})

	out.Reset()
	runStatementTo(&out, db, `fn:count(db2-fn:xmlcolumn("T.D")//y/@p[. > 5])`, shellOpts{stats: true})
	if got := out.String(); !strings.Contains(got, "index-only") || !strings.Contains(got, "nodes decoded 1") {
		t.Errorf("stats line missing index-only markers:\n%s", got)
	}

	out.Reset()
	runStatementTo(&out, db, `for $i in db2-fn:xmlcolumn("T.D")//x[y/@p > 5] return $i`, shellOpts{stats: true})
	if got := out.String(); !strings.Contains(got, "nodes seeded 1") {
		t.Errorf("stats line missing the seeded-node count:\n%s", got)
	}
}

func TestMetaCommands(t *testing.T) {
	db := xqdb.Open()
	db.MustExecSQL(`create table t (a integer, d xml)`)
	opts := &shellOpts{stats: true}
	var out strings.Builder
	if metaTo(&out, db, `\quit`, opts) {
		t.Error("\\quit should stop the loop")
	}
	if !metaTo(&out, db, `\stats off`, opts) || opts.stats {
		t.Error("\\stats off failed")
	}
	if !metaTo(&out, db, `\trace on`, opts) || !opts.trace {
		t.Error("\\trace on failed")
	}
	if !metaTo(&out, db, `\slow 100ms`, opts) || opts.slow != 100*time.Millisecond {
		t.Error("\\slow 100ms failed")
	}
	if !metaTo(&out, db, `\slow off`, opts) || opts.slow != 0 {
		t.Error("\\slow off failed")
	}
	if !metaTo(&out, db, `\noindex on`, opts) || db.UseIndexes {
		t.Error("\\noindex on failed")
	}
	metaTo(&out, db, `\explain db2-fn:xmlcolumn("T.D")//y[z > 1]`, opts)
	if !strings.Contains(out.String(), "no XML indexes") {
		t.Errorf("explain output:\n%s", out.String())
	}
	out.Reset()
	metaTo(&out, db, `\metrics`, opts)
	if !strings.Contains(out.String(), "counters") {
		t.Errorf("\\metrics should print the snapshot JSON:\n%s", out.String())
	}
	out.Reset()
	metaTo(&out, db, `\help`, opts)
	if !strings.Contains(out.String(), "commands:") {
		t.Error("unknown meta should print help")
	}
}

func TestLoadScript(t *testing.T) {
	dir := t.TempDir()
	script := filepath.Join(dir, "setup.sql")
	if err := os.WriteFile(script, []byte(`
		create table t (a integer, d xml);
		insert into t values (1, '<x/>');
	`), 0o644); err != nil {
		t.Fatal(err)
	}
	db := xqdb.Open()
	var out strings.Builder
	metaTo(&out, db, `\load `+script, &shellOpts{})
	runStatementTo(&out, db, `select a from t`, shellOpts{})
	if !strings.Contains(out.String(), "row 1: 1") {
		t.Errorf("load script failed:\n%s", out.String())
	}
}
