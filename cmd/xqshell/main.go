// Command xqshell is an interactive shell for xqdb. It accepts SQL/XML
// statements and stand-alone XQuery expressions, with meta-commands:
//
//	\explain <query>   analyze a query without running it
//	\stats on|off      print planner statistics after each query
//	\noindex on|off    disable index pre-filtering (full scans)
//	\load <file>       run statements from a file (separated by ;)
//	\quit
//
// Lines are dispatched by first keyword: CREATE/INSERT/SELECT/VALUES go to
// the SQL engine, everything else to XQuery.
package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/xqdb/xqdb"
)

func main() {
	db := xqdb.Open()
	showStats := true
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Println("xqdb shell — SQL/XML and XQuery. \\quit to exit.")
	fmt.Print("xqdb> ")
	var buf strings.Builder
	for in.Scan() {
		line := in.Text()
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "\\") {
			if !meta(db, trimmed, &showStats) {
				return
			}
			fmt.Print("xqdb> ")
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.Contains(line, ";") {
			if strings.TrimSpace(buf.String()) == "" {
				fmt.Print("xqdb> ")
				buf.Reset()
				continue
			}
			fmt.Print("   -> ")
			continue
		}
		stmt := strings.TrimSuffix(strings.TrimSpace(buf.String()), ";")
		buf.Reset()
		runStatement(db, stmt, showStats)
		fmt.Print("xqdb> ")
	}
}

func meta(db *xqdb.DB, cmd string, showStats *bool) bool {
	return metaTo(os.Stdout, db, cmd, showStats)
}

func metaTo(w io.Writer, db *xqdb.DB, cmd string, showStats *bool) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case "\\quit", "\\q":
		return false
	case "\\stats":
		*showStats = len(fields) > 1 && fields[1] == "on"
	case "\\noindex":
		db.UseIndexes = !(len(fields) > 1 && fields[1] == "on")
	case "\\explain":
		query := strings.TrimSpace(strings.TrimPrefix(cmd, "\\explain"))
		rep, err := db.Explain(query)
		if err != nil {
			fmt.Fprintln(w, "error:", err)
		} else {
			fmt.Fprint(w, rep)
		}
	case "\\load":
		if len(fields) < 2 {
			fmt.Println("usage: \\load <file>")
			break
		}
		data, err := os.ReadFile(fields[1])
		if err != nil {
			fmt.Fprintln(w, "error:", err)
			break
		}
		for _, stmt := range strings.Split(string(data), ";") {
			stmt = strings.TrimSpace(stmt)
			if stmt != "" {
				runStatementTo(w, db, stmt, false)
			}
		}
	default:
		fmt.Fprintln(w, "commands: \\explain <q>, \\stats on|off, \\noindex on|off, \\load <file>, \\quit")
	}
	return true
}

// runStatement dispatches SQL vs XQuery by leading keyword.
func runStatement(db *xqdb.DB, stmt string, showStats bool) {
	runStatementTo(os.Stdout, db, stmt, showStats)
}

func runStatementTo(w io.Writer, db *xqdb.DB, stmt string, showStats bool) {
	first := strings.ToLower(strings.Fields(stmt)[0])
	var (
		res   *xqdb.Result
		stats *xqdb.Stats
		err   error
	)
	switch first {
	case "create", "insert", "select", "values", "drop", "delete":
		res, stats, err = db.ExecSQL(stmt)
	default:
		res, stats, err = db.QueryXQuery(stmt)
	}
	if err != nil {
		fmt.Fprintln(w, "error:", err)
		return
	}
	if len(res.Columns) > 0 && res.Len() > 0 {
		fmt.Fprintln(w, strings.Join(res.Columns, " | "))
	}
	for i, row := range res.Rows() {
		fmt.Fprintf(w, "row %d: %s\n", i+1, strings.Join(row, " | "))
	}
	if showStats && stats != nil {
		fmt.Fprintf(w, "-- %d rows", res.Len())
		if len(stats.IndexesUsed) > 0 {
			fmt.Fprintf(w, "; indexes: %s; docs %d/%d", strings.Join(stats.IndexesUsed, ", "), stats.DocsScanned, stats.DocsTotal)
		}
		fmt.Fprintln(w)
	}
}
