// Command xqshell is an interactive shell for xqdb. It accepts SQL/XML
// statements and stand-alone XQuery expressions, with meta-commands:
//
//	\explain <query>   analyze a query without running it
//	\stats on|off      print planner statistics after each query
//	\noindex on|off    disable index pre-filtering (full scans)
//	\load <file>       run statements from a file (separated by ;)
//	\quit
//
// Lines are dispatched by first keyword: CREATE/INSERT/SELECT/VALUES go to
// the SQL engine, everything else to XQuery.
package main

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"

	"github.com/xqdb/xqdb"
)

func main() {
	db := xqdb.Open()
	showStats := true
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	// SIGINT cancels the running statement via its guard context instead
	// of killing the shell; at the prompt it is simply swallowed.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	fmt.Println("xqdb shell — SQL/XML and XQuery. \\quit to exit, ctrl-c interrupts a query.")
	fmt.Print("xqdb> ")
	var buf strings.Builder
	for in.Scan() {
		line := in.Text()
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "\\") {
			if !meta(db, trimmed, &showStats) {
				return
			}
			fmt.Print("xqdb> ")
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.Contains(line, ";") {
			if strings.TrimSpace(buf.String()) == "" {
				fmt.Print("xqdb> ")
				buf.Reset()
				continue
			}
			fmt.Print("   -> ")
			continue
		}
		stmt := strings.TrimSuffix(strings.TrimSpace(buf.String()), ";")
		buf.Reset()
		runInterruptible(db, sig, stmt, showStats)
		fmt.Print("xqdb> ")
	}
}

// runInterruptible runs one statement under a context canceled by SIGINT.
// A canceled, timed-out, or panicking query prints an error and returns
// to the prompt; it never takes the shell down.
func runInterruptible(db *xqdb.DB, sig <-chan os.Signal, stmt string, showStats bool) {
	// Drain a SIGINT delivered while the shell sat at the prompt so it
	// does not cancel this statement immediately.
	select {
	case <-sig:
	default:
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		select {
		case <-sig:
			cancel()
		case <-done:
		}
	}()
	runStatementCtx(os.Stdout, db, ctx, stmt, showStats)
	close(done)
	cancel()
}

func meta(db *xqdb.DB, cmd string, showStats *bool) bool {
	return metaTo(os.Stdout, db, cmd, showStats)
}

func metaTo(w io.Writer, db *xqdb.DB, cmd string, showStats *bool) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case "\\quit", "\\q":
		return false
	case "\\stats":
		*showStats = len(fields) > 1 && fields[1] == "on"
	case "\\noindex":
		db.UseIndexes = !(len(fields) > 1 && fields[1] == "on")
	case "\\explain":
		query := strings.TrimSpace(strings.TrimPrefix(cmd, "\\explain"))
		rep, err := db.Explain(query)
		if err != nil {
			fmt.Fprintln(w, "error:", err)
		} else {
			fmt.Fprint(w, rep)
		}
	case "\\load":
		if len(fields) < 2 {
			fmt.Println("usage: \\load <file>")
			break
		}
		data, err := os.ReadFile(fields[1])
		if err != nil {
			fmt.Fprintln(w, "error:", err)
			break
		}
		for _, stmt := range strings.Split(string(data), ";") {
			stmt = strings.TrimSpace(stmt)
			if stmt != "" {
				runStatementTo(w, db, stmt, false)
			}
		}
	default:
		fmt.Fprintln(w, "commands: \\explain <q>, \\stats on|off, \\noindex on|off, \\load <file>, \\quit")
	}
	return true
}

// runStatementTo dispatches SQL vs XQuery by leading keyword.
func runStatementTo(w io.Writer, db *xqdb.DB, stmt string, showStats bool) {
	runStatementCtx(w, db, context.Background(), stmt, showStats)
}

func runStatementCtx(w io.Writer, db *xqdb.DB, ctx context.Context, stmt string, showStats bool) {
	first := strings.ToLower(strings.Fields(stmt)[0])
	opts := xqdb.QueryOptions{Context: ctx}
	var (
		res   *xqdb.Result
		stats *xqdb.Stats
		err   error
	)
	switch first {
	case "create", "insert", "select", "values", "drop", "delete":
		res, stats, err = db.ExecSQLOpts(stmt, opts)
	default:
		res, stats, err = db.QueryXQueryOpts(stmt, opts)
	}
	var qe *xqdb.QueryError
	if errors.As(err, &qe) {
		// Guardrail errors (interrupt, timeout, contained panic) print
		// with their kind; the shell keeps running either way.
		fmt.Fprintf(w, "query error (%s): %v\n", qe.Kind, qe.Err)
		return
	}
	if err != nil {
		fmt.Fprintln(w, "error:", err)
		return
	}
	if len(res.Columns) > 0 && res.Len() > 0 {
		fmt.Fprintln(w, strings.Join(res.Columns, " | "))
	}
	for i, row := range res.Rows() {
		fmt.Fprintf(w, "row %d: %s\n", i+1, strings.Join(row, " | "))
	}
	if showStats && stats != nil {
		fmt.Fprintf(w, "-- %d rows", res.Len())
		if len(stats.IndexesUsed) > 0 {
			fmt.Fprintf(w, "; indexes: %s; docs %d/%d", strings.Join(stats.IndexesUsed, ", "), stats.DocsScanned, stats.DocsTotal)
		}
		fmt.Fprintln(w)
	}
}
