// Command xqshell is an interactive shell for xqdb. It accepts SQL/XML
// statements (including EXPLAIN <statement>) and stand-alone XQuery
// expressions, with meta-commands:
//
//	\explain <query>   analyze a query without running it
//	\stats on|off      print planner statistics after each query
//	\trace on|off      print timed execution spans after each query
//	\slow <dur>|off    log queries slower than dur (e.g. \slow 100ms)
//	\metrics           print the metrics registry snapshot as JSON
//	\noindex on|off    disable index pre-filtering (full scans)
//	\load <file>       run statements from a file (separated by ;)
//	\quit
//
// Lines are dispatched by first keyword: CREATE/INSERT/SELECT/VALUES/
// EXPLAIN go to the SQL engine, everything else to XQuery.
package main

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"time"

	"github.com/xqdb/xqdb"
)

// shellOpts is the shell's per-session display and guardrail state.
type shellOpts struct {
	stats bool
	trace bool
	slow  time.Duration // 0 = slow-query log off
}

func main() {
	db := xqdb.Open()
	opts := &shellOpts{stats: true}
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	// SIGINT cancels the running statement via its guard context instead
	// of killing the shell; at the prompt it is simply swallowed.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	fmt.Println("xqdb shell — SQL/XML and XQuery. \\quit to exit, ctrl-c interrupts a query.")
	fmt.Print("xqdb> ")
	var buf strings.Builder
	for in.Scan() {
		line := in.Text()
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "\\") {
			if !meta(db, trimmed, opts) {
				return
			}
			fmt.Print("xqdb> ")
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.Contains(line, ";") {
			if strings.TrimSpace(buf.String()) == "" {
				fmt.Print("xqdb> ")
				buf.Reset()
				continue
			}
			fmt.Print("   -> ")
			continue
		}
		stmt := strings.TrimSuffix(strings.TrimSpace(buf.String()), ";")
		buf.Reset()
		runInterruptible(db, sig, stmt, opts)
		fmt.Print("xqdb> ")
	}
}

// runInterruptible runs one statement under a context canceled by SIGINT.
// A canceled, timed-out, or panicking query prints an error and returns
// to the prompt; it never takes the shell down.
func runInterruptible(db *xqdb.DB, sig <-chan os.Signal, stmt string, opts *shellOpts) {
	// Drain a SIGINT delivered while the shell sat at the prompt so it
	// does not cancel this statement immediately.
	select {
	case <-sig:
	default:
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		select {
		case <-sig:
			cancel()
		case <-done:
		}
	}()
	runStatementCtx(os.Stdout, db, ctx, stmt, *opts)
	close(done)
	cancel()
}

func meta(db *xqdb.DB, cmd string, opts *shellOpts) bool {
	return metaTo(os.Stdout, db, cmd, opts)
}

func metaTo(w io.Writer, db *xqdb.DB, cmd string, opts *shellOpts) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case "\\quit", "\\q":
		return false
	case "\\stats":
		opts.stats = len(fields) > 1 && fields[1] == "on"
	case "\\trace":
		opts.trace = len(fields) > 1 && fields[1] == "on"
	case "\\slow":
		if len(fields) < 2 || fields[1] == "off" {
			opts.slow = 0
			break
		}
		d, err := time.ParseDuration(fields[1])
		if err != nil {
			fmt.Fprintln(w, "usage: \\slow <duration>|off  (e.g. \\slow 100ms)")
			break
		}
		opts.slow = d
	case "\\metrics":
		data, err := db.MetricsJSON()
		if err != nil {
			fmt.Fprintln(w, "error:", err)
			break
		}
		fmt.Fprintf(w, "%s\n", data)
	case "\\noindex":
		db.UseIndexes = !(len(fields) > 1 && fields[1] == "on")
	case "\\explain":
		query := strings.TrimSpace(strings.TrimPrefix(cmd, "\\explain"))
		rep, err := db.Explain(query)
		if err != nil {
			fmt.Fprintln(w, "error:", err)
		} else {
			fmt.Fprint(w, rep)
		}
	case "\\load":
		if len(fields) < 2 {
			fmt.Fprintln(w, "usage: \\load <file>")
			break
		}
		data, err := os.ReadFile(fields[1])
		if err != nil {
			fmt.Fprintln(w, "error:", err)
			break
		}
		for _, stmt := range strings.Split(string(data), ";") {
			stmt = strings.TrimSpace(stmt)
			if stmt != "" {
				runStatementTo(w, db, stmt, shellOpts{})
			}
		}
	default:
		fmt.Fprintln(w, "commands: \\explain <q>, \\stats on|off, \\trace on|off, \\slow <dur>|off, \\metrics, \\noindex on|off, \\load <file>, \\quit")
	}
	return true
}

// runStatementTo dispatches SQL vs XQuery by leading keyword.
func runStatementTo(w io.Writer, db *xqdb.DB, stmt string, opts shellOpts) {
	runStatementCtx(w, db, context.Background(), stmt, opts)
}

func runStatementCtx(w io.Writer, db *xqdb.DB, ctx context.Context, stmt string, opts shellOpts) {
	first := strings.ToLower(strings.Fields(stmt)[0])
	qopts := xqdb.QueryOptions{Context: ctx, Trace: opts.trace}
	if opts.slow > 0 {
		qopts.SlowThreshold = opts.slow
		qopts.OnSlow = func(sq xqdb.SlowQuery) {
			fmt.Fprintf(w, "slow query (%s, %s): %.120s\n", sq.Duration.Round(time.Microsecond), sq.Language, sq.Query)
		}
	}
	var (
		res   *xqdb.Result
		stats *xqdb.Stats
		err   error
	)
	switch first {
	case "create", "insert", "select", "values", "drop", "delete", "explain":
		res, stats, err = db.ExecSQLOpts(stmt, qopts)
	default:
		res, stats, err = db.QueryXQueryOpts(stmt, qopts)
	}
	var qe *xqdb.QueryError
	if errors.As(err, &qe) {
		// Guardrail errors (interrupt, timeout, contained panic) print
		// with their kind; the shell keeps running either way.
		fmt.Fprintf(w, "query error (%s): %v\n", qe.Kind, qe.Err)
		return
	}
	if err != nil {
		fmt.Fprintln(w, "error:", err)
		return
	}
	if len(res.Columns) > 0 && res.Len() > 0 {
		fmt.Fprintln(w, strings.Join(res.Columns, " | "))
	}
	for i, row := range res.Rows() {
		fmt.Fprintf(w, "row %d: %s\n", i+1, strings.Join(row, " | "))
	}
	if opts.stats && stats != nil {
		// The stats digest itself lives with the engine (Stats.Summary)
		// so every field added to Stats surfaces here automatically —
		// the statsmerge analyzer holds the renderer to that.
		fmt.Fprintf(w, "-- %d rows%s\n", res.Len(), stats.Summary())
	}
	if opts.trace && stats != nil && stats.Trace != nil {
		for _, s := range stats.Trace.Spans {
			fmt.Fprintf(w, "trace: %-8s +%-10s %-10s %s\n", s.Name, s.Start.Round(time.Microsecond), s.Dur.Round(time.Microsecond), s.Note)
		}
	}
}
