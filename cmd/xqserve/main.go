// Command xqserve promotes the embeddable engine into a network
// front-end: an HTTP/JSON server over one shared database, with
// admission control (global in-flight budget, bounded deadline-aware
// queue, load shedding), per-request timeouts and cancellation, and a
// graceful drain on SIGTERM/SIGINT.
//
// Endpoints:
//
//	POST /query    {"query": "...", "timeout_ms": 1000, ...}
//	POST /explain  {"query": "..."}   (or GET /explain?q=...)
//	GET  /metrics  engine + admission metrics (key-sorted JSON)
//	GET  /healthz  liveness and admission state
//
// Usage:
//
//	xqserve -addr :8080 -demo 2000
//	xqserve -addr :8080 -load orders=./docs
//
// The -demo flag seeds the paper's orders schema with n generated
// documents and the li_price XMLPATTERN index, so the server answers
// indexed queries out of the box (useful for load tests and smoke
// checks).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/xqdb/xqdb"
	"github.com/xqdb/xqdb/internal/server"
	"github.com/xqdb/xqdb/internal/server/admission"
	"github.com/xqdb/xqdb/internal/workload"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		demo       = flag.Int("demo", 0, "seed the demo orders schema with n generated documents")
		load       = flag.String("load", "", "load .xml files into a table: table=dir")
		loadPar    = flag.Int("load-parallelism", 0, "parse workers for -load (0 = GOMAXPROCS, 1 = serial)")
		inflight   = flag.Int("max-inflight", 16, "global concurrent-query budget")
		queue      = flag.Int("max-queue", 64, "bounded wait-queue capacity (negative disables queuing)")
		maxWait    = flag.Duration("max-wait", time.Second, "longest a request may sit queued")
		retryAfter = flag.Duration("retry-after", time.Second, "Retry-After hint attached to sheds")
		slowAfter  = flag.Duration("slow-threshold", 500*time.Millisecond, "slow-query threshold feeding the overload detector (0 disables)")
		slowLimit  = flag.Int("slow-limit", 0, "slow queries within slow-window that flip the overload signal (0 disables)")
		slowWindow = flag.Duration("slow-window", 10*time.Second, "window for the overload detector")
		timeout    = flag.Duration("default-timeout", 30*time.Second, "per-request timeout when the request sets none")
		maxTimeout = flag.Duration("max-timeout", 5*time.Minute, "cap on requested timeouts")
		drainFor   = flag.Duration("drain-timeout", 10*time.Second, "grace for in-flight queries on SIGTERM before force-cancel")
	)
	flag.Parse()
	if err := run(*addr, *demo, *load, *loadPar, server.Config{
		Admission: admission.Config{
			MaxInFlight: *inflight,
			MaxQueue:    *queue,
			MaxWait:     *maxWait,
			RetryAfter:  *retryAfter,
			SlowLimit:   *slowLimit,
			SlowWindow:  *slowWindow,
		},
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		SlowThreshold:  *slowAfter,
	}, *drainFor); err != nil {
		fmt.Fprintln(os.Stderr, "xqserve:", err)
		os.Exit(1)
	}
}

func run(addr string, demo int, load string, loadPar int, cfg server.Config, drainFor time.Duration) error {
	db := xqdb.Open(xqdb.WithLoadParallelism(loadPar))
	if demo > 0 {
		if err := seedDemo(db, demo); err != nil {
			return fmt.Errorf("seeding demo corpus: %w", err)
		}
		log.Printf("seeded demo orders corpus: %d documents, li_price index", demo)
	}
	if load != "" {
		table, dir, ok := strings.Cut(load, "=")
		if !ok {
			return fmt.Errorf("-load wants table=dir, got %q", load)
		}
		db.MustExecSQL(fmt.Sprintf(`create table %s (id integer, doc xml)`, table))
		n, err := db.LoadXMLDir(table, dir)
		if err != nil {
			return err
		}
		log.Printf("loaded %d documents from %s into %s", n, dir, table)
	}
	cfg.DB = db
	srv := server.New(cfg)
	httpSrv := &http.Server{
		Addr:        addr,
		Handler:     srv.Handler(),
		ConnContext: srv.ConnContext,
		ConnState:   srv.ConnState,
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("xqserve listening on %s (max-inflight %d, queue %d)",
		addr, cfg.Admission.MaxInFlight, cfg.Admission.MaxQueue)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		return err // listener died
	case sig := <-sigc:
		log.Printf("%s: draining (grace %s)", sig, drainFor)
	}

	// Drain protocol: stop accepting (healthz flips to 503, queued
	// waiters get ErrDraining), let in-flight queries finish under the
	// grace period, force-cancel the rest via the guard, then close the
	// listener.
	ctx, cancel := context.WithTimeout(context.Background(), drainFor)
	defer cancel()
	httpSrv.SetKeepAlivesEnabled(false)
	if err := srv.Drain(ctx); err != nil {
		log.Printf("drain: %v", err)
	} else {
		log.Printf("drain: all in-flight queries completed")
	}
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shutCancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	return nil
}

// seedDemo loads the paper's orders schema: the same generated corpus
// the experiment harness uses, plus the canonical li_price index.
func seedDemo(db *xqdb.DB, n int) error {
	db.MustExecSQL(`create table orders (ordid integer, orddoc xml)`)
	for i, doc := range workload.Orders(workload.DefaultOrders(n)) {
		esc := strings.ReplaceAll(doc, "'", "''")
		if _, _, err := db.ExecSQL(fmt.Sprintf(`insert into orders values (%d, '%s')`, i, esc)); err != nil {
			return err
		}
	}
	db.MustExecSQL(`create index li_price on orders(orddoc) using xmlpattern '//lineitem/@price' as double`)
	return nil
}
