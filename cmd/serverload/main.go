// Command serverload drives a running xqserve with concurrent HTTP
// clients and reports latency percentiles and the admission outcome mix
// (success / shed / timeout / error rates). It is the load half of the
// CI load-test job: xqserve runs under -race while serverload hammers
// it, and the printed report is uploaded as an artifact.
//
// Usage:
//
//	serverload -addr http://localhost:8080 -c 200 -n 5000
//	serverload -addr http://localhost:8080 -c 100 -duration 30s -timeout-ms 250
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The mix pairs cheap indexed probes with one full-scan FLWOR heavy
// enough to hold an admission slot — without it a fast engine drains
// every request before the queue can form and the shed path never runs.
var queries = []string{
	`select ordid from orders where ordid = %d`,
	`db2-fn:xmlcolumn("ORDERS.ORDDOC")//lineitem[@price > 150]`,
	`db2-fn:xmlcolumn("ORDERS.ORDDOC")//order[lineitem/@price > 180]`,
	`for $d in db2-fn:xmlcolumn("ORDERS.ORDDOC") for $l in $d//lineitem where $l/@price >= 0 return $l/@price`,
}

type result struct {
	status  int
	latency time.Duration
	err     error
}

func main() {
	var (
		addr      = flag.String("addr", "http://localhost:8080", "xqserve base URL")
		conc      = flag.Int("c", 100, "concurrent clients")
		total     = flag.Int("n", 2000, "total requests (ignored when -duration is set)")
		duration  = flag.Duration("duration", 0, "run for a fixed duration instead of a request count")
		timeoutMS = flag.Int64("timeout-ms", 1000, "per-request timeout_ms sent to the server")
		jsonOut   = flag.String("json", "", "also write the summary as JSON to this file")
	)
	flag.Parse()
	if err := run(*addr, *conc, *total, *duration, *timeoutMS, *jsonOut, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "serverload:", err)
		os.Exit(1)
	}
}

func run(addr string, conc, total int, duration time.Duration, timeoutMS int64, jsonOut string, out io.Writer) error {
	// Wait for the server to come up (CI boots it moments before).
	if err := waitHealthy(addr, 30*time.Second); err != nil {
		return err
	}

	var (
		mu      sync.Mutex
		results []result
		seq     atomic.Int64
		stop    = make(chan struct{})
	)
	if duration > 0 {
		total = int(^uint(0) >> 1) // run until the timer fires
		time.AfterFunc(duration, func() { close(stop) })
	}
	// The default transport keeps only 2 idle conns per host, which
	// throttles real concurrency to a trickle of churning connections —
	// size the pool to the worker count so the server sees the load.
	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        conc,
			MaxIdleConnsPerHost: conc,
		},
	}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := seq.Add(1)
				if int(i) > total {
					return
				}
				select {
				case <-stop:
					return
				default:
				}
				r := oneRequest(client, addr, i, timeoutMS)
				mu.Lock()
				results = append(results, r)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	return report(results, elapsed, jsonOut, out)
}

func oneRequest(client *http.Client, addr string, i int64, timeoutMS int64) result {
	q := queries[i%int64(len(queries))]
	if strings.Contains(q, "%d") {
		q = fmt.Sprintf(q, i%500)
	}
	body, _ := json.Marshal(map[string]any{"query": q, "timeout_ms": timeoutMS})
	t0 := time.Now()
	resp, err := client.Post(addr+"/query", "application/json", strings.NewReader(string(body)))
	lat := time.Since(t0)
	if err != nil {
		return result{err: err, latency: lat}
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return result{status: resp.StatusCode, latency: lat}
}

func waitHealthy(addr string, patience time.Duration) error {
	deadline := time.Now().Add(patience)
	for {
		resp, err := http.Get(addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not healthy after %s: %v", addr, patience, err)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// summary is the machine-readable report (-json).
type summary struct {
	Requests   int              `json:"requests"`
	ElapsedMS  int64            `json:"elapsed_ms"`
	Throughput float64          `json:"requests_per_sec"`
	ByStatus   map[string]int   `json:"by_status"`
	ShedRate   float64          `json:"shed_rate"`
	ErrorCount int              `json:"transport_errors"`
	LatencyMS  map[string]int64 `json:"latency_ms"`
	// Benchmarks and Pairs make the artifact double as a cmd/benchjson
	// Report, so cmd/benchdiff diffs two load-test runs exactly the way
	// it diffs bench artifacts (the CI loadtest-diff step). Latency
	// percentiles and mean request cost land as pseudo-benchmarks in
	// true nanoseconds; shed_rate_pct carries the rate in percent
	// through the ns_per_op field — benchdiff only compares ratios, so
	// the unit label is cosmetic.
	Benchmarks []benchmark `json:"benchmarks"`
	Pairs      []struct{}  `json:"pairs"`
}

// benchmark mirrors the cmd/benchjson entry layout (the fields
// cmd/benchdiff reads).
type benchmark struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
}

func report(results []result, elapsed time.Duration, jsonOut string, out io.Writer) error {
	if len(results) == 0 {
		return fmt.Errorf("no requests completed")
	}
	byStatus := map[string]int{}
	var lats []time.Duration
	errs, shed := 0, 0
	for _, r := range results {
		if r.err != nil {
			errs++
			continue
		}
		byStatus[fmt.Sprint(r.status)]++
		lats = append(lats, r.latency)
		if r.status == http.StatusTooManyRequests {
			shed++
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) int64 {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)-1))
		return lats[i].Milliseconds()
	}
	s := summary{
		Requests:   len(results),
		ElapsedMS:  elapsed.Milliseconds(),
		Throughput: float64(len(results)) / elapsed.Seconds(),
		ByStatus:   byStatus,
		ShedRate:   float64(shed) / float64(len(results)),
		ErrorCount: errs,
		LatencyMS: map[string]int64{
			"p50": pct(0.50), "p90": pct(0.90), "p99": pct(0.99), "max": pct(1.0),
		},
	}
	iters := int64(len(lats))
	s.Benchmarks = []benchmark{
		{Name: "ServerLoad/latency_p50", Iterations: iters, NsPerOp: float64(s.LatencyMS["p50"]) * 1e6},
		{Name: "ServerLoad/latency_p90", Iterations: iters, NsPerOp: float64(s.LatencyMS["p90"]) * 1e6},
		{Name: "ServerLoad/latency_p99", Iterations: iters, NsPerOp: float64(s.LatencyMS["p99"]) * 1e6},
		{Name: "ServerLoad/latency_max", Iterations: iters, NsPerOp: float64(s.LatencyMS["max"]) * 1e6},
		{Name: "ServerLoad/ns_per_request", Iterations: int64(s.Requests), NsPerOp: 1e9 / s.Throughput},
		{Name: "ServerLoad/shed_rate_pct", Iterations: int64(shed), NsPerOp: 100 * s.ShedRate},
	}
	s.Pairs = make([]struct{}, 0)
	fmt.Fprintf(out, "requests:     %d in %s (%.1f req/s)\n", s.Requests, elapsed.Round(time.Millisecond), s.Throughput)
	keys := make([]string, 0, len(byStatus))
	for k := range byStatus {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(out, "status %s:   %d\n", k, byStatus[k])
	}
	fmt.Fprintf(out, "shed rate:    %.2f%%\n", 100*s.ShedRate)
	fmt.Fprintf(out, "transport errors: %d\n", errs)
	fmt.Fprintf(out, "latency ms:   p50=%d p90=%d p99=%d max=%d\n",
		s.LatencyMS["p50"], s.LatencyMS["p90"], s.LatencyMS["p99"], s.LatencyMS["max"])
	if jsonOut != "" {
		data, err := json.MarshalIndent(s, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	// Transport errors mean requests that never resolved to a response —
	// the one outcome admission control exists to prevent.
	if errs > 0 {
		return fmt.Errorf("%d requests failed at the transport layer", errs)
	}
	return nil
}
