package main

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestReportEmitsBenchjsonShape: the -json artifact must decode as a
// cmd/benchjson Report (benchmarks + pairs) so cmd/benchdiff can diff
// two load-test runs, with latency percentiles and shed rate carried as
// pseudo-benchmarks.
func TestReportEmitsBenchjsonShape(t *testing.T) {
	results := make([]result, 0, 100)
	for i := 0; i < 100; i++ {
		r := result{status: http.StatusOK, latency: time.Duration(i+1) * time.Millisecond}
		if i < 10 { // 10% shed
			r.status = http.StatusTooManyRequests
		}
		results = append(results, r)
	}
	jsonOut := filepath.Join(t.TempDir(), "load.json")
	var out strings.Builder
	if err := report(results, 2*time.Second, jsonOut, &out); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(jsonOut)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		ShedRate   float64 `json:"shed_rate"`
		Benchmarks []struct {
			Name    string  `json:"name"`
			NsPerOp float64 `json:"ns_per_op"`
		} `json:"benchmarks"`
		Pairs []struct{} `json:"pairs"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("artifact not valid JSON: %v\n%s", err, data)
	}
	if !strings.Contains(string(data), `"pairs": []`) {
		t.Errorf("pairs must marshal as [], not null:\n%s", data)
	}

	byName := map[string]float64{}
	for _, b := range rep.Benchmarks {
		byName[b.Name] = b.NsPerOp
	}
	// p50 over 1..100ms is the 49th index (benchdiff-ready nanoseconds).
	if got := byName["ServerLoad/latency_p50"]; got != 50*1e6 {
		t.Errorf("latency_p50 = %v ns, want %v", got, 50*1e6)
	}
	if got := byName["ServerLoad/latency_max"]; got != 100*1e6 {
		t.Errorf("latency_max = %v ns, want %v", got, 100*1e6)
	}
	// 100 requests in 2s = 2e7 ns per request.
	if got := byName["ServerLoad/ns_per_request"]; got < 1.9e7 || got > 2.1e7 {
		t.Errorf("ns_per_request = %v, want ~2e7", got)
	}
	if got := byName["ServerLoad/shed_rate_pct"]; got != 10 {
		t.Errorf("shed_rate_pct = %v, want 10", got)
	}
	if rep.ShedRate != 0.10 {
		t.Errorf("shed_rate = %v, want 0.10", rep.ShedRate)
	}
	for _, want := range []string{"shed rate:", "latency ms:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("human report missing %q:\n%s", want, out.String())
		}
	}
}

// TestReportTransportErrorsFail: requests that never resolved to a
// response must fail the run — that is the outcome admission control
// exists to prevent — while still writing the artifact first.
func TestReportTransportErrorsFail(t *testing.T) {
	results := []result{
		{status: http.StatusOK, latency: time.Millisecond},
		{err: os.ErrDeadlineExceeded, latency: time.Second},
	}
	jsonOut := filepath.Join(t.TempDir(), "load.json")
	var out strings.Builder
	err := report(results, time.Second, jsonOut, &out)
	if err == nil || !strings.Contains(err.Error(), "transport layer") {
		t.Fatalf("want transport-layer failure, got %v", err)
	}
	if _, statErr := os.Stat(jsonOut); statErr != nil {
		t.Errorf("artifact must be written before the error returns: %v", statErr)
	}
}
