// Command xqbench runs the paper-reproduction experiments (E0-E12, see
// DESIGN.md §3 and EXPERIMENTS.md) and prints their tables.
//
// Usage:
//
//	xqbench                 run every experiment at the default scale
//	xqbench -experiment E7  run one experiment
//	xqbench -docs 10000     scale the corpora
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/xqdb/xqdb/internal/experiments"
)

func main() {
	exp := flag.String("experiment", "", "experiment id (E0..E12); empty = all")
	docs := flag.Int("docs", 2000, "base corpus size in documents")
	flag.Parse()

	cfg := experiments.Config{Docs: *docs}
	if *exp != "" {
		t, err := experiments.Run(*exp, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xqbench:", err)
			os.Exit(1)
		}
		fmt.Println(t.Format())
		return
	}
	tables, err := experiments.All(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xqbench:", err)
		os.Exit(1)
	}
	for _, t := range tables {
		fmt.Println(t.Format())
	}
}
