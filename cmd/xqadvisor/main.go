// Command xqadvisor analyzes a query against a schema-and-index setup
// script and prints the eligibility report: every candidate predicate,
// each index's verdict with the paper's failure-mode diagnosis
// (structure / type / context), and tip warnings.
//
// Usage:
//
//	xqadvisor -setup setup.sql 'for $i in db2-fn:xmlcolumn(...)...'
//	echo "SELECT ..." | xqadvisor -setup setup.sql
//
// The setup script holds CREATE TABLE / CREATE INDEX statements separated
// by semicolons; no data is needed for analysis.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/xqdb/xqdb"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is main with its exits, streams, and arguments made explicit so
// tests can drive both failure paths. It returns the process exit code:
// 0 on success, 1 on any setup or query failure (reported on stderr).
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("xqadvisor", flag.ContinueOnError)
	fs.SetOutput(stderr)
	setup := fs.String("setup", "", "path to a DDL script (CREATE TABLE / CREATE INDEX)")
	if err := fs.Parse(args); err != nil {
		return 1
	}

	fail := func(err error) int {
		fmt.Fprintln(stderr, "xqadvisor:", err)
		return 1
	}

	db := xqdb.Open()
	if *setup != "" {
		data, err := os.ReadFile(*setup)
		if err != nil {
			return fail(err)
		}
		for _, stmt := range strings.Split(string(data), ";") {
			stmt = strings.TrimSpace(stmt)
			if stmt == "" {
				continue
			}
			if _, _, err := db.ExecSQL(stmt); err != nil {
				return fail(fmt.Errorf("setup: %s: %w", stmt, err))
			}
		}
	}

	query := strings.Join(fs.Args(), " ")
	if strings.TrimSpace(query) == "" {
		data, err := io.ReadAll(stdin)
		if err != nil {
			return fail(err)
		}
		query = string(data)
	}
	if strings.TrimSpace(query) == "" {
		return fail(fmt.Errorf("no query given (argument or stdin)"))
	}
	rep, err := db.Explain(query)
	if err != nil {
		return fail(err)
	}
	fmt.Fprint(stdout, rep)
	return 0
}
