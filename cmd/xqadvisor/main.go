// Command xqadvisor analyzes a query against a schema-and-index setup
// script and prints the eligibility report: every candidate predicate,
// each index's verdict with the paper's failure-mode diagnosis
// (structure / type / context), and tip warnings.
//
// Usage:
//
//	xqadvisor -setup setup.sql 'for $i in db2-fn:xmlcolumn(...)...'
//	echo "SELECT ..." | xqadvisor -setup setup.sql
//
// The setup script holds CREATE TABLE / CREATE INDEX statements separated
// by semicolons; no data is needed for analysis.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/xqdb/xqdb"
)

func main() {
	setup := flag.String("setup", "", "path to a DDL script (CREATE TABLE / CREATE INDEX)")
	flag.Parse()

	db := xqdb.Open()
	if *setup != "" {
		data, err := os.ReadFile(*setup)
		if err != nil {
			fatal(err)
		}
		for _, stmt := range strings.Split(string(data), ";") {
			stmt = strings.TrimSpace(stmt)
			if stmt == "" {
				continue
			}
			if _, _, err := db.ExecSQL(stmt); err != nil {
				fatal(fmt.Errorf("setup: %s: %w", stmt, err))
			}
		}
	}

	query := strings.Join(flag.Args(), " ")
	if strings.TrimSpace(query) == "" {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fatal(err)
		}
		query = string(data)
	}
	if strings.TrimSpace(query) == "" {
		fatal(fmt.Errorf("no query given (argument or stdin)"))
	}
	rep, err := db.Explain(query)
	if err != nil {
		fatal(err)
	}
	fmt.Print(rep)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xqadvisor:", err)
	os.Exit(1)
}
