package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runAdvisor(t *testing.T, args []string, stdin string) (int, string, string) {
	t.Helper()
	var stdout, stderr strings.Builder
	code := run(args, strings.NewReader(stdin), &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func writeSetup(t *testing.T, ddl string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "setup.sql")
	if err := os.WriteFile(path, []byte(ddl), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunReportsEligibleIndex(t *testing.T) {
	setup := writeSetup(t, `
		create table orders (ordid integer, orddoc xml);
		create index li_price on orders(orddoc) using xmlpattern '//lineitem/@price' as double;
	`)
	code, stdout, stderr := runAdvisor(t,
		[]string{"-setup", setup, `db2-fn:xmlcolumn("ORDERS.ORDDOC")//lineitem[@price > 100]`}, "")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "li_price") {
		t.Fatalf("report does not mention the index:\n%s", stdout)
	}
}

func TestRunQueryParseFailureExitsNonZero(t *testing.T) {
	code, stdout, stderr := runAdvisor(t, []string{`for $i in (((`}, "")
	if code == 0 {
		t.Fatal("malformed query must exit non-zero")
	}
	if stdout != "" {
		t.Fatalf("failure must not write a report to stdout: %q", stdout)
	}
	if !strings.Contains(stderr, "xqadvisor:") {
		t.Fatalf("stderr must carry the diagnostic, got: %q", stderr)
	}
}

func TestRunSetupParseFailureExitsNonZero(t *testing.T) {
	setup := writeSetup(t, `create tble orders (ordid integer, orddoc xml)`)
	code, stdout, stderr := runAdvisor(t, []string{"-setup", setup, `1 + 1`}, "")
	if code == 0 {
		t.Fatal("malformed setup DDL must exit non-zero")
	}
	if stdout != "" {
		t.Fatalf("failure must not write a report to stdout: %q", stdout)
	}
	if !strings.Contains(stderr, "setup:") || !strings.Contains(stderr, "xqadvisor:") {
		t.Fatalf("stderr must name the failing setup statement, got: %q", stderr)
	}
}

func TestRunMissingSetupFileExitsNonZero(t *testing.T) {
	code, _, stderr := runAdvisor(t, []string{"-setup", filepath.Join(t.TempDir(), "absent.sql"), `1`}, "")
	if code == 0 {
		t.Fatal("missing setup file must exit non-zero")
	}
	if !strings.Contains(stderr, "xqadvisor:") {
		t.Fatalf("stderr must carry the diagnostic, got: %q", stderr)
	}
}

func TestRunReadsQueryFromStdin(t *testing.T) {
	code, stdout, stderr := runAdvisor(t, nil, `1 + 1`)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if stdout == "" {
		t.Fatal("stdin query must produce a report")
	}
}

func TestRunNoQueryExitsNonZero(t *testing.T) {
	code, _, stderr := runAdvisor(t, nil, "")
	if code == 0 {
		t.Fatal("empty query must exit non-zero")
	}
	if !strings.Contains(stderr, "no query given") {
		t.Fatalf("stderr = %q", stderr)
	}
}
