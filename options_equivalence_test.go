package xqdb

import (
	"fmt"
	"strings"
	"testing"
)

// TestQueryOptionsEquivalenceProperty runs every combination of the
// public QueryOptions boolean knobs — the knobmatrix analyzer enforces
// that each one appears here — and requires byte-identical results to
// the plain defaults: Trace, NoProbeCache, NoSynopsis, NoIndexOnly, and
// NoNodeSeeds toggle optimizations and observability, never answers.
func TestQueryOptionsEquivalenceProperty(t *testing.T) {
	db := Open()
	db.MustExecSQL(`create table orders (ordid integer, orddoc xml)`)
	for i := 0; i < 40; i++ {
		db.MustExecSQL(fmt.Sprintf(
			`insert into orders values (%d, '<order><custid>%d</custid><lineitem price="%d"/><lineitem price="%d"/></order>')`,
			i, i%7, 40+i*7%200, 10+i*3%150))
	}
	db.MustExecSQL(`create index li_price on orders(orddoc) using xmlpattern '//lineitem/@price' as double`)

	queries := []string{
		// Probe + re-evaluation, index-only aggregate, and a synopsis
		// short-circuit (no <missing> path is stored).
		`db2-fn:xmlcolumn("ORDERS.ORDDOC")//order[lineitem/@price > 100]`,
		`fn:count(db2-fn:xmlcolumn("ORDERS.ORDDOC")//lineitem/@price[. > 100])`,
		`fn:exists(db2-fn:xmlcolumn("ORDERS.ORDDOC")//missing[@price > 1])`,
	}
	render := func(res *Result) string {
		var b strings.Builder
		for _, row := range res.Rows() {
			b.WriteString(strings.Join(row, "|"))
			b.WriteByte('\n')
		}
		return b.String()
	}
	for _, q := range queries {
		base, _, err := db.QueryXQuery(q)
		if err != nil {
			t.Fatalf("%s baseline: %v", q, err)
		}
		want := render(base)
		for mask := 0; mask < 32; mask++ {
			for _, par := range []int{1, 4} {
				o := QueryOptions{
					Trace:        mask&1 != 0,
					NoProbeCache: mask&2 != 0,
					NoSynopsis:   mask&4 != 0,
					NoIndexOnly:  mask&8 != 0,
					NoNodeSeeds:  mask&16 != 0,
					Parallelism:  par,
				}
				res, stats, err := db.QueryXQueryOpts(q, o)
				if err != nil {
					t.Fatalf("%s under %+v: %v", q, o, err)
				}
				if got := render(res); got != want {
					t.Fatalf("%s: options %+v changed the result\nwant %q\ngot  %q", q, o, want, got)
				}
				if o.Trace && (stats == nil || stats.Trace == nil) {
					t.Fatalf("%s: Trace set but no spans collected", q)
				}
			}
		}
	}
}
