package xqdb

import (
	"github.com/xqdb/xqdb/internal/xdm"
	"github.com/xqdb/xqdb/internal/xmlparse"
)

// parseDoc parses one XML document.
func parseDoc(src string) (*xdm.Node, error) {
	return xmlparse.Parse(src)
}
