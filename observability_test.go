package xqdb

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestExplainPitfalls drives one query into each pitfall class the paper
// catalogs and checks that Explain names the rejected index and states
// the rejection reason in the paper's terms — structure, type, or
// context — rather than just declaring the index unused.
func TestExplainPitfalls(t *testing.T) {
	cases := []struct {
		name  string
		index string
		query string
		// wantReasons must all appear in the report, alongside the index
		// name and "not eligible".
		wantReasons []string
	}{
		{
			name:  "type mismatch string vs double",
			index: `create index li_price on orders(orddoc) using xmlpattern '//lineitem/@price' as double`,
			query: `db2-fn:xmlcolumn("ORDERS.ORDDOC")//order[lineitem/@price = "100"]`,
			wantReasons: []string{
				"type: string comparison cannot use a double index",
			},
		},
		{
			name:  "pattern containment failure",
			index: `create index cust_id on orders(orddoc) using xmlpattern '/order/custid' as double`,
			query: `db2-fn:xmlcolumn("ORDERS.ORDDOC")//order[lineitem/@price > 100]`,
			wantReasons: []string{
				"structure: index pattern",
				"does not contain query path",
			},
		},
		{
			name:  "namespace mismatch (Tip 10)",
			index: `create index nation_v on orders(orddoc) using xmlpattern '//nation' as varchar`,
			query: `declare default element namespace "urn:geo";
				db2-fn:xmlcolumn("ORDERS.ORDDOC")/customer[nation = "1"]`,
			wantReasons: []string{
				"namespace mismatch — Tip 10",
			},
		},
		{
			name:  "text() misalignment (Tip 11)",
			index: `create index price_el on orders(orddoc) using xmlpattern '//lineitem/price' as varchar`,
			query: `db2-fn:xmlcolumn("ORDERS.ORDDOC")//order[lineitem/price/text() = "99.50"]`,
			wantReasons: []string{
				"/text() steps are not aligned — Tip 11",
			},
		},
		{
			name:  "attribute axis mismatch (Tip 12)",
			index: `create index li_any on orders(orddoc) using xmlpattern '//lineitem/*' as double`,
			query: `db2-fn:xmlcolumn("ORDERS.ORDDOC")//order[lineitem/@price > 100]`,
			wantReasons: []string{
				"reaches no attribute nodes — Tip 12",
			},
		},
		{
			name:  "non-filtering constructor context (Tip 7)",
			index: `create index li_price on orders(orddoc) using xmlpattern '//lineitem/@price' as double`,
			query: `for $ord in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order
				return <result>{$ord/lineitem[@price > 100]}</result>`,
			wantReasons: []string{
				"context:",
				"warning (Tip 7",
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			db := Open()
			db.MustExecSQL(`create table orders (ordid integer, orddoc xml)`)
			db.MustExecSQL(tc.index)
			rep, err := db.Explain(tc.query)
			if err != nil {
				t.Fatal(err)
			}
			idxName := strings.Fields(tc.index)[2]
			if !strings.Contains(rep, "index "+idxName) {
				t.Errorf("report should name the rejected index %s:\n%s", idxName, rep)
			}
			if !strings.Contains(rep, "not eligible") {
				t.Errorf("report should mark the index not eligible:\n%s", rep)
			}
			for _, want := range tc.wantReasons {
				if !strings.Contains(rep, want) {
					t.Errorf("report missing reason %q:\n%s", want, rep)
				}
			}
		})
	}
}

// TestExplainChosenIndex is the positive counterpart: an eligible index
// shows up as chosen, and the summary reports the probe.
func TestExplainChosenIndex(t *testing.T) {
	db := Open()
	db.MustExecSQL(`create table orders (ordid integer, orddoc xml)`)
	db.MustExecSQL(`create index li_price on orders(orddoc) using xmlpattern '//lineitem/@price' as double`)
	rep, err := db.Explain(`db2-fn:xmlcolumn("ORDERS.ORDDOC")//order[lineitem/@price > 100]`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ELIGIBLE (chosen:", "li_price", "probes=1", "cache=bypass", "partitionable: yes"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

// TestExplainSQLStatement runs EXPLAIN as a SQL statement: it must
// return the report as a one-row result without executing the inner
// statement.
func TestExplainSQLStatement(t *testing.T) {
	db := Open()
	db.MustExecSQL(`create table orders (ordid integer, orddoc xml)`)
	db.MustExecSQL(`insert into orders values (1, '<order><lineitem price="150"/></order>')`)
	res, _, err := db.ExecSQL(`explain select ordid from orders
		where XMLExists('$o//lineitem[@price > 100]' passing orddoc as "o")`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || len(res.Columns) != 1 || res.Columns[0] != "plan" {
		t.Fatalf("EXPLAIN result shape: cols=%v rows=%d", res.Columns, res.Len())
	}
	rep := res.Cell(0, 0)
	if !strings.Contains(rep, "plan: language=sql") {
		t.Errorf("EXPLAIN should render the plan report:\n%s", rep)
	}
	// EXPLAIN DDL must not execute the DDL.
	if _, _, err := db.ExecSQL(`explain create table t2 (a integer, d xml)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Prepare(`select a from t2`); err == nil {
		t.Error("EXPLAIN CREATE TABLE must not create the table")
	}
	// Nested EXPLAIN is a parse error.
	if _, _, err := db.ExecSQL(`explain explain select ordid from orders`); err == nil ||
		!strings.Contains(err.Error(), "EXPLAIN cannot be nested") {
		t.Errorf("nested EXPLAIN: %v", err)
	}
}

// TestStmtExplainCache checks the prepared path's cache line: Prepare
// warms the cache (hit), a schema change invalidates it (miss), and the
// explain itself re-warms it (hit).
func TestStmtExplainCache(t *testing.T) {
	db := Open()
	db.MustExecSQL(`create table orders (ordid integer, orddoc xml)`)
	stmt, err := db.Prepare(`select ordid from orders`)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := stmt.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep, "cache=hit") {
		t.Errorf("after Prepare the plan should be cached:\n%s", rep)
	}
	db.MustExecSQL(`create table other (a integer, d xml)`)
	if rep, _ = stmt.Explain(); !strings.Contains(rep, "cache=miss") {
		t.Errorf("schema change should invalidate the cached plan:\n%s", rep)
	}
	if rep, _ = stmt.Explain(); !strings.Contains(rep, "cache=hit") {
		t.Errorf("explain should have re-cached the plan:\n%s", rep)
	}
}

// TestTraceSpans checks the opt-in span trace on both languages, and
// that untraced queries carry no trace.
func TestTraceSpans(t *testing.T) {
	db := Open()
	db.MustExecSQL(`create table orders (ordid integer, orddoc xml)`)
	db.MustExecSQL(`insert into orders values (1, '<order><lineitem price="150"/></order>')`)
	db.MustExecSQL(`create index li_price on orders(orddoc) using xmlpattern '//lineitem/@price' as double`)

	_, stats, err := db.QueryXQueryOpts(`db2-fn:xmlcolumn("ORDERS.ORDDOC")//order[lineitem/@price > 100]`,
		QueryOptions{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Trace == nil {
		t.Fatal("Trace requested but Stats.Trace is nil")
	}
	names := map[string]bool{}
	for _, s := range stats.Trace.Spans {
		names[s.Name] = true
		if s.Dur < 0 {
			t.Errorf("span %s has negative duration", s.Name)
		}
	}
	for _, want := range []string{"plan", "probe", "eval"} {
		if !names[want] {
			t.Errorf("XQuery trace missing %q span; spans=%v", want, names)
		}
	}
	if rendered := stats.Trace.Render(); !strings.Contains(rendered, "probe") {
		t.Errorf("Render output:\n%s", rendered)
	}

	_, stats, err = db.ExecSQLOpts(`select ordid from orders`, QueryOptions{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	names = map[string]bool{}
	for _, s := range stats.Trace.Spans {
		names[s.Name] = true
	}
	if !names["plan"] || !names["scan"] {
		t.Errorf("SQL trace missing plan/scan spans; spans=%v", names)
	}

	if _, stats, err = db.ExecSQL(`select ordid from orders`); err != nil {
		t.Fatal(err)
	} else if stats.Trace != nil {
		t.Error("untraced query should carry no trace")
	}
}

// TestSlowQueryHook: a threshold of 1ns marks every query slow, firing
// the callback (with forced tracing) and the queries.slow counter.
func TestSlowQueryHook(t *testing.T) {
	db := Open()
	db.MustExecSQL(`create table orders (ordid integer, orddoc xml)`)
	db.MustExecSQL(`insert into orders values (1, '<order/>')`)
	var got []SlowQuery
	opts := QueryOptions{
		SlowThreshold: time.Nanosecond,
		OnSlow:        func(sq SlowQuery) { got = append(got, sq) },
	}
	if _, _, err := db.QueryXQueryOpts(`db2-fn:xmlcolumn("ORDERS.ORDDOC")/order`, opts); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("OnSlow calls = %d", len(got))
	}
	sq := got[0]
	if sq.Language != "xquery" || sq.Duration <= 0 || sq.Err != nil {
		t.Errorf("slow query record: %+v", sq)
	}
	if sq.Stats == nil || sq.Stats.Trace == nil {
		t.Error("OnSlow should force tracing so the report shows where time went")
	}
	if n := db.MetricsSnapshot().Counters["queries.slow"]; n != 1 {
		t.Errorf("queries.slow = %d", n)
	}
	// A failing query still fires the hook, with the pre-wrapping error.
	if _, _, err := db.QueryXQueryOpts(`db2-fn:xmlcolumn("MISSING.D")/x`, opts); err == nil {
		t.Fatal("query on missing collection should fail")
	}
	if len(got) != 2 || got[1].Err == nil {
		t.Fatalf("failing slow query should fire the hook with its error: %+v", got)
	}
}

// TestSlowQueryHookParallelExecution pins the hook contract under
// document-at-a-time parallelism: one query fanned across workers fires
// OnSlow exactly once, with stats merged from every shard — not once per
// worker, and not a partial shard's view. The concurrent half runs many
// such queries at once so -race can see the callback and stat-merge
// paths contending.
func TestSlowQueryHookParallelExecution(t *testing.T) {
	db := Open()
	db.MustExecSQL(`create table orders (ordid integer, orddoc xml)`)
	// Enough documents to clear the engine's minParallelDocs sharding
	// floor, so Parallelism actually fans out.
	const docs = 64
	for i := 0; i < docs; i++ {
		db.MustExecSQL(fmt.Sprintf(
			`insert into orders values (%d, '<order><lineitem price="%d"/></order>')`, i, 100+i))
	}

	var (
		mu  sync.Mutex
		got []SlowQuery
	)
	opts := QueryOptions{
		Parallelism:   4,
		SlowThreshold: time.Nanosecond,
		OnSlow: func(sq SlowQuery) {
			mu.Lock()
			got = append(got, sq)
			mu.Unlock()
		},
	}
	res, _, err := db.QueryXQueryOpts(`db2-fn:xmlcolumn("ORDERS.ORDDOC")//lineitem[@price >= 100]`, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != docs {
		t.Fatalf("results = %d, want %d", res.Len(), docs)
	}
	if len(got) != 1 {
		t.Fatalf("OnSlow fired %d times for one parallel query, want exactly 1", len(got))
	}
	sq := got[0]
	if sq.Stats == nil {
		t.Fatal("slow query carries no stats")
	}
	if sq.Stats.ParallelShards < 2 {
		t.Errorf("ParallelShards = %d; query did not actually fan out", sq.Stats.ParallelShards)
	}
	// Merged stats must account for the whole corpus, not one shard.
	if sq.Stats.DocsScanned != docs {
		t.Errorf("DocsScanned = %d, want %d (stats not merged across shards)", sq.Stats.DocsScanned, docs)
	}

	// Concurrent parallel queries: every one fires once, counter matches.
	base := db.MetricsSnapshot().Counters["queries.slow"]
	const concurrent = 16
	var fired atomic.Int64
	copts := opts
	copts.OnSlow = func(SlowQuery) { fired.Add(1) }
	var wg sync.WaitGroup
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := db.QueryXQueryOpts(`db2-fn:xmlcolumn("ORDERS.ORDDOC")//lineitem[@price >= 100]`, copts); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if n := fired.Load(); n != concurrent {
		t.Errorf("OnSlow fired %d times for %d concurrent queries", n, concurrent)
	}
	if n := db.MetricsSnapshot().Counters["queries.slow"] - base; n != concurrent {
		t.Errorf("queries.slow advanced by %d, want %d", n, concurrent)
	}
}

// TestMetricsMixedWorkload drives successful, erroring, and guard-tripped
// queries and checks the registry tells them apart.
func TestMetricsMixedWorkload(t *testing.T) {
	db := Open()
	db.MustExecSQL(`create table orders (ordid integer, orddoc xml)`)
	db.MustExecSQL(`insert into orders values
		(1, '<order><lineitem price="150"/></order>'),
		(2, '<order><lineitem price="50"/></order>')`)
	db.MustExecSQL(`create index li_price on orders(orddoc) using xmlpattern '//lineitem/@price' as double`)

	if _, _, err := db.QueryXQuery(`db2-fn:xmlcolumn("ORDERS.ORDDOC")//order[lineitem/@price > 100]`); err != nil {
		t.Fatal(err)
	}
	// Guard trip: canceled context.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := db.QueryXQueryOpts(`db2-fn:xmlcolumn("ORDERS.ORDDOC")//order`, QueryOptions{Context: ctx}); err == nil {
		t.Fatal("canceled query should fail")
	}
	// Guard trip: step limit.
	if _, _, err := db.QueryXQueryOpts(`db2-fn:xmlcolumn("ORDERS.ORDDOC")//order`, QueryOptions{MaxEvalSteps: 1}); err == nil {
		t.Fatal("step-limited query should fail")
	}

	snap := db.MetricsSnapshot()
	// queries.total also counts the setup DDL/DML, so only the targeted
	// counters get exact expectations.
	checks := map[string]int64{
		"queries.xquery":       3,
		"queries.errors":       2,
		"guard.trips.canceled": 1,
		"guard.trips.limit":    1,
	}
	if snap.Counters["queries.total"] < 3 {
		t.Errorf("queries.total = %d", snap.Counters["queries.total"])
	}
	for name, want := range checks {
		if snap.Counters[name] != want {
			t.Errorf("%s = %d, want %d", name, snap.Counters[name], want)
		}
	}
	if snap.Counters["xmlindex.probes"] == 0 {
		t.Error("indexed query should count a probe")
	}
	if snap.Histograms["query.latency"].Count == 0 {
		t.Error("latency histogram empty")
	}
	if data, err := db.MetricsJSON(); err != nil || !strings.Contains(string(data), "queries.total") {
		t.Errorf("MetricsJSON: %v\n%s", err, data)
	}
}

// The probe-cache capacity rides from Open through catalog and table to
// every index created afterwards, is reported in MetricsSnapshot, and
// actually bounds the per-index LRU.
func TestProbeCacheCapacityOption(t *testing.T) {
	if got := Open().MetricsSnapshot().Gauges["probecache.capacity"]; got != 128 {
		t.Fatalf("default probecache.capacity = %d, want 128", got)
	}

	db := Open(WithProbeCacheCapacity(2))
	if got := db.MetricsSnapshot().Gauges["probecache.capacity"]; got != 2 {
		t.Fatalf("probecache.capacity = %d, want 2", got)
	}
	db.MustExecSQL(`create table orders (ordid integer, orddoc xml)`)
	db.MustExecSQL(`insert into orders values (1, '<order><lineitem price="150"/></order>')`)
	db.MustExecSQL(`create index li_price on orders(orddoc) using xmlpattern '//lineitem/@price' as double`)

	// Six distinct probes against a capacity-2 cache: entries stay
	// bounded and the overflow shows up as evictions.
	for i := 0; i < 6; i++ {
		q := fmt.Sprintf(`db2-fn:xmlcolumn("ORDERS.ORDDOC")//order[lineitem/@price > %d]`, i)
		if _, _, err := db.QueryXQuery(q); err != nil {
			t.Fatal(err)
		}
	}
	snap := db.MetricsSnapshot()
	if got := snap.Gauges["probecache.entries"]; got != 2 {
		t.Fatalf("probecache.entries = %d, want the configured cap 2", got)
	}
	if got := snap.Counters["probecache.evictions"]; got != 4 {
		t.Fatalf("probecache.evictions = %d, want 4", got)
	}
}

// TestMetricsSnapshotConcurrency hammers the registry from query
// goroutines while snapshotting concurrently; run under -race this
// checks the registry's synchronization discipline.
func TestMetricsSnapshotConcurrency(t *testing.T) {
	db := Open()
	db.MustExecSQL(`create table orders (ordid integer, orddoc xml)`)
	db.MustExecSQL(`insert into orders values (1, '<order><lineitem price="150"/></order>')`)
	db.MustExecSQL(`create index li_price on orders(orddoc) using xmlpattern '//lineitem/@price' as double`)
	stmt, err := db.PrepareXQuery(`db2-fn:xmlcolumn("ORDERS.ORDDOC")//order[lineitem/@price > 100]`)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				switch {
				case j%5 == 0:
					ctx, cancel := context.WithCancel(context.Background())
					cancel()
					_, _, _ = db.QueryXQueryOpts(`db2-fn:xmlcolumn("ORDERS.ORDDOC")//order`, QueryOptions{Context: ctx})
				case i%2 == 0:
					if _, _, err := stmt.Exec(); err != nil {
						t.Error(err)
					}
				default:
					if _, _, err := db.ExecSQL(`select ordid from orders`); err != nil {
						t.Error(err)
					}
				}
			}
		}(i)
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				snap := db.MetricsSnapshot()
				if snap.Counters == nil {
					t.Error("nil counters in snapshot")
				}
			}
		}()
	}
	wg.Wait()
	snap := db.MetricsSnapshot()
	if snap.Counters["queries.total"] < 100 {
		t.Errorf("queries.total = %d, want >= 100", snap.Counters["queries.total"])
	}
	if snap.Counters["plancache.hits"] == 0 {
		t.Error("prepared executions should hit the plan cache")
	}
	if snap.Counters["guard.trips.canceled"] == 0 {
		t.Error("canceled queries should trip the guard counter")
	}
}
