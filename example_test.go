package xqdb_test

import (
	"fmt"
	"strings"

	"github.com/xqdb/xqdb"
)

// Example shows the core flow: DDL, documents, an XML index, and an
// index-accelerated XQuery.
func Example() {
	db := xqdb.Open()
	db.MustExecSQL(`create table orders (ordid integer, orddoc xml)`)
	db.MustExecSQL(`insert into orders values
		(1, '<order><lineitem price="150"/></order>'),
		(2, '<order><lineitem price="50"/></order>')`)
	db.MustExecSQL(`create index li_price on orders(orddoc)
		using xmlpattern '//lineitem/@price' as double`)

	res, stats, err := db.QueryXQuery(`db2-fn:xmlcolumn("ORDERS.ORDDOC")//lineitem[@price > 100]`)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Rows()[0][0])
	fmt.Printf("scanned %d of %d documents\n", stats.DocsScanned, stats.DocsTotal)
	// Output:
	// <lineitem price="150"/>
	// scanned 1 of 2 documents
}

// ExampleDB_ExecSQL runs SQL/XML with an embedded XQuery predicate.
func ExampleDB_ExecSQL() {
	db := xqdb.Open()
	db.MustExecSQL(`create table orders (ordid integer, orddoc xml)`)
	db.MustExecSQL(`insert into orders values
		(1, '<order><custid>7</custid></order>'),
		(2, '<order><custid>9</custid></order>')`)
	res, _, err := db.ExecSQL(`select ordid from orders
		where XMLExists('$o/order[custid = 9]' passing orddoc as "o")
		order by ordid`)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Rows())
	// Output: [[2]]
}

// ExampleDB_Explain prints the eligibility report for a query that looks
// indexable but is not (the paper's Query 3 pitfall).
func ExampleDB_Explain() {
	db := xqdb.Open()
	db.MustExecSQL(`create table orders (ordid integer, orddoc xml)`)
	db.MustExecSQL(`create index li_price on orders(orddoc)
		using xmlpattern '//lineitem/@price' as double`)
	report, err := db.Explain(`db2-fn:xmlcolumn("ORDERS.ORDDOC")//lineitem[@price > "100"]`)
	if err != nil {
		panic(err)
	}
	for _, line := range strings.SplitN(report, "\n", 4)[:3] {
		fmt.Println(line)
	}
	// Output:
	// predicate: orders.orddoc: //lineitem/@price > 100 [string]
	//   index li_price [//lineitem/@price AS double]: not eligible
	//     - type: string comparison cannot use a double index: non-castable values are missing from it
}
