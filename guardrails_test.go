package xqdb

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/xqdb/xqdb/internal/guard"
)

// loadedDB builds a database with n order documents, each carrying several
// lineitems, plus a price index — the //-heavy workload the guardrail
// acceptance criterion runs against.
func loadedDB(t testing.TB, n int) *DB {
	t.Helper()
	db := Open()
	db.MustExecSQL(`create table orders (ordid integer, orddoc xml)`)
	for i := 0; i < n; i++ {
		var b strings.Builder
		b.WriteString("<order>")
		for j := 0; j < 8; j++ {
			fmt.Fprintf(&b, `<lineitem price="%d"><product><id>P%d</id><deep><deeper><deepest>x</deepest></deeper></deep></product></lineitem>`, (i+j)%200, j)
		}
		b.WriteString("</order>")
		db.MustExecSQL(fmt.Sprintf(`insert into orders values (%d, '%s')`, i, b.String()))
	}
	db.MustExecSQL(`create index li_price on orders(orddoc) using xmlpattern '//lineitem/@price' as double`)
	return db
}

const heavyQuery = `for $d in db2-fn:xmlcolumn("ORDERS.ORDDOC")
	for $l in $d//lineitem
	where some $x in $d//deepest satisfies $l/@price >= 0
	return $l/product/id`

func TestTimeoutReturnsQueryError(t *testing.T) {
	db := loadedDB(t, 300)
	start := time.Now()
	_, _, err := db.QueryXQueryOpts(heavyQuery, QueryOptions{Timeout: time.Millisecond})
	elapsed := time.Since(start)
	var qe *QueryError
	if !errors.As(err, &qe) {
		t.Fatalf("want *QueryError, got %v", err)
	}
	if qe.Kind != ErrTimeout {
		t.Fatalf("kind = %s, want timeout", qe.Kind)
	}
	if !strings.Contains(qe.Query, "lineitem") {
		t.Fatalf("QueryError should carry the query text, got %q", qe.Query)
	}
	// "Promptly": far below the unguarded runtime; generous bound for CI.
	if elapsed > 2*time.Second {
		t.Fatalf("1ms timeout took %v to fire", elapsed)
	}
	// The DB is not corrupted: the same query without limits still works.
	res, _, err := db.QueryXQuery(heavyQuery)
	if err != nil {
		t.Fatalf("query after timeout: %v", err)
	}
	if res.Len() == 0 {
		t.Fatal("query after timeout returned no rows")
	}
}

func TestCancellation(t *testing.T) {
	db := loadedDB(t, 200)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled: the guard must notice before any work
	_, _, err := db.QueryXQueryOpts(heavyQuery, QueryOptions{Context: ctx})
	var qe *QueryError
	if !errors.As(err, &qe) || qe.Kind != ErrCanceled {
		t.Fatalf("want canceled QueryError, got %v", err)
	}
}

// TestCancelMidQueryThenVerify is the cancellation property test: cancel
// mid-query at random points, then verify the DB still answers correctly
// (filtered and unfiltered runs agree).
func TestCancelMidQueryThenVerify(t *testing.T) {
	db := loadedDB(t, 150)
	for _, delay := range []time.Duration{0, 50 * time.Microsecond, 200 * time.Microsecond, time.Millisecond, 5 * time.Millisecond} {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			time.Sleep(delay)
			cancel()
			close(done)
		}()
		_, _, err := db.QueryXQueryOpts(heavyQuery, QueryOptions{Context: ctx})
		<-done
		if err != nil {
			var qe *QueryError
			if !errors.As(err, &qe) {
				t.Fatalf("delay %v: non-QueryError failure %v", delay, err)
			}
			if qe.Kind != ErrCanceled && qe.Kind != ErrTimeout {
				t.Fatalf("delay %v: kind = %s", delay, qe.Kind)
			}
		}
	}
	assertFilteredAgrees(t, db)
}

// assertFilteredAgrees runs the reference query with and without index
// pre-filtering and requires identical results — the consistency check
// chaos and cancellation tests rely on.
func assertFilteredAgrees(t *testing.T, db *DB) {
	t.Helper()
	q := `db2-fn:xmlcolumn("ORDERS.ORDDOC")//lineitem[@price > 100]`
	db.UseIndexes = true
	withIdx, stats, err := db.QueryXQuery(q)
	if err != nil {
		t.Fatalf("indexed run: %v", err)
	}
	if len(stats.IndexesUsed) == 0 {
		t.Fatal("indexed run used no index")
	}
	db.UseIndexes = false
	without, _, err := db.QueryXQuery(q)
	db.UseIndexes = true
	if err != nil {
		t.Fatalf("full-scan run: %v", err)
	}
	a, b := withIdx.Rows(), without.Rows()
	if len(a) != len(b) {
		t.Fatalf("filtered %d rows vs unfiltered %d rows", len(a), len(b))
	}
	for i := range a {
		if a[i][0] != b[i][0] {
			t.Fatalf("row %d: filtered %q vs unfiltered %q", i, a[i][0], b[i][0])
		}
	}
}

func TestMaxResultItems(t *testing.T) {
	db := loadedDB(t, 50)
	_, _, err := db.QueryXQueryOpts(`db2-fn:xmlcolumn("ORDERS.ORDDOC")//lineitem`, QueryOptions{MaxResultItems: 10})
	var qe *QueryError
	if !errors.As(err, &qe) || qe.Kind != ErrLimitExceeded {
		t.Fatalf("want limit QueryError, got %v", err)
	}
	// SQL result rows are capped too.
	_, _, err = db.ExecSQLOpts(`select ordid from orders`, QueryOptions{MaxResultItems: 10})
	if !errors.As(err, &qe) || qe.Kind != ErrLimitExceeded {
		t.Fatalf("want limit QueryError for SQL, got %v", err)
	}
	// Within the limit both succeed.
	if _, _, err := db.ExecSQLOpts(`select ordid from orders`, QueryOptions{MaxResultItems: 100}); err != nil {
		t.Fatalf("within limit: %v", err)
	}
}

func TestMaxEvalSteps(t *testing.T) {
	db := Open()
	_, _, err := db.QueryXQueryOpts(`count(1 to 10000000)`, QueryOptions{MaxEvalSteps: 1000})
	var qe *QueryError
	if !errors.As(err, &qe) || qe.Kind != ErrLimitExceeded {
		t.Fatalf("want limit QueryError, got %v", err)
	}
	// The same query bounded generously completes.
	if _, _, err := db.QueryXQueryOpts(`count(1 to 100)`, QueryOptions{MaxEvalSteps: 100000}); err != nil {
		t.Fatalf("generous bound: %v", err)
	}
}

func TestParseLimits(t *testing.T) {
	db := Open()
	db.MustExecSQL(`create table t (a integer)`)
	db.MustExecSQL(`insert into t values (1)`)
	deep := strings.Repeat("<a>", 100) + "x" + strings.Repeat("</a>", 100)
	_, _, err := db.ExecSQLOpts(fmt.Sprintf(`select xmlparse(document '%s') from t`, deep), QueryOptions{MaxParseDepth: 10})
	var qe *QueryError
	if !errors.As(err, &qe) || qe.Kind != ErrLimitExceeded {
		t.Fatalf("want limit QueryError for deep XMLPARSE, got %v", err)
	}
	_, _, err = db.ExecSQLOpts(`select xmlparse(document '<a><b/></a>') from t`, QueryOptions{MaxParseDepth: 10})
	if err != nil {
		t.Fatalf("shallow document rejected: %v", err)
	}
	_, _, err = db.ExecSQLOpts(`select xmlparse(document '<a>big</a>') from t`, QueryOptions{MaxDocBytes: 4})
	if !errors.As(err, &qe) || qe.Kind != ErrLimitExceeded {
		t.Fatalf("want limit QueryError for oversized document, got %v", err)
	}
}

// TestPanicContainment injects a panic at a storage fault point and
// checks it surfaces as QueryError{Kind: Internal} instead of crashing.
func TestPanicContainment(t *testing.T) {
	defer guard.SetFaultHook(nil)
	db := loadedDB(t, 5)
	guard.SetFaultHook(func(site string) error {
		if strings.HasPrefix(site, "storage.collection:") {
			panic("injected evaluator panic")
		}
		return nil
	})
	_, _, err := db.QueryXQuery(`db2-fn:xmlcolumn("ORDERS.ORDDOC")//lineitem`)
	var qe *QueryError
	if !errors.As(err, &qe) || qe.Kind != ErrInternal {
		t.Fatalf("want internal QueryError, got %v", err)
	}
	if !strings.Contains(qe.Error(), "panic") {
		t.Fatalf("error should mention the panic: %v", qe)
	}
	guard.SetFaultHook(nil)
	// The DB survives: queries and writes keep working.
	if _, _, err := db.QueryXQuery(`db2-fn:xmlcolumn("ORDERS.ORDDOC")//lineitem[@price > 100]`); err != nil {
		t.Fatalf("query after contained panic: %v", err)
	}
	db.MustExecSQL(`insert into orders values (999, '<order><lineitem price="150"/></order>')`)
	assertFilteredAgrees(t, db)
}

func TestZeroOptionsBehaveLikePlainCalls(t *testing.T) {
	db := loadedDB(t, 10)
	a, _, err := db.QueryXQuery(heavyQuery)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := db.QueryXQueryOpts(heavyQuery, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("plain %d rows vs zero-options %d rows", a.Len(), b.Len())
	}
}

func TestQueryErrorFormatting(t *testing.T) {
	qe := &QueryError{Kind: ErrTimeout, Query: "//a", Err: &guard.Violation{Kind: guard.Timeout, Msg: "deadline"}}
	if !strings.Contains(qe.Error(), "timeout") || !strings.Contains(qe.Error(), "//a") {
		t.Fatalf("Error() = %q", qe.Error())
	}
	if qe.Unwrap() == nil {
		t.Fatal("Unwrap lost the cause")
	}
	if ErrorKind(99).String() != "unknown" {
		t.Fatal("out-of-range kind should print unknown")
	}
}

// TestCanceledBeatsTimeoutDeterministically pins the public half of the
// guard's tie-break contract: a query submitted with a canceled context
// AND an already-expired wall-clock timeout must always classify as
// ErrCanceled — the client hung up, and misreporting that as ErrTimeout
// would send the server layer down the wrong status-code path.
func TestCanceledBeatsTimeoutDeterministically(t *testing.T) {
	db := loadedDB(t, 50)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i := 0; i < 50; i++ {
		_, _, err := db.QueryXQueryOpts(heavyQuery, QueryOptions{
			Context: ctx,
			Timeout: time.Nanosecond,
		})
		var qe *QueryError
		if !errors.As(err, &qe) {
			t.Fatalf("run %d: want *QueryError, got %v", i, err)
		}
		if qe.Kind != ErrCanceled {
			t.Fatalf("run %d: Kind = %v, want ErrCanceled", i, qe.Kind)
		}
	}
}
