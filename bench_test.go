package xqdb

// Benchmarks regenerating the paper's evaluation artifacts as testing.B
// benchmarks, one pair (full scan vs indexed) per experiment query. The
// tables themselves print via `go run ./cmd/xqbench`; these benchmarks
// give the per-query timings under the standard Go tooling. The absolute
// numbers are substrate-dependent; the reproduction target is the shape:
// indexed beats scan wherever the paper says the index is eligible, and
// matches it (no index used) where it is not.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/xqdb/xqdb/internal/postings"
	"github.com/xqdb/xqdb/internal/workload"
)

const benchDocs = 2000

// benchDB builds the paper schema with the standard corpus and indexes.
func benchDB(b *testing.B) *DB {
	b.Helper()
	db := Open()
	db.MustExecSQL(`create table orders (ordid integer, orddoc xml)`)
	db.MustExecSQL(`create table customer (cid integer, cdoc xml)`)
	db.MustExecSQL(`create table products (id varchar(13), name varchar(32))`)
	for i, doc := range workload.Orders(workload.DefaultOrders(benchDocs)) {
		db.MustExecSQL(fmt.Sprintf(`insert into orders values (%d, '%s')`, i, doc))
	}
	for i, doc := range workload.Customers(100, "", 2) {
		db.MustExecSQL(fmt.Sprintf(`insert into customer values (%d, '%s')`, i, doc))
	}
	for _, p := range workload.Products(20) {
		db.MustExecSQL(fmt.Sprintf(`insert into products values ('%s', '%s')`, p[0], p[1]))
	}
	db.MustExecSQL(`create index li_price on orders(orddoc) using xmlpattern '//lineitem/@price' as double`)
	db.MustExecSQL(`create index li_price_str on orders(orddoc) using xmlpattern '//lineitem/@price' as varchar`)
	db.MustExecSQL(`create index prod_id on orders(orddoc) using xmlpattern '//lineitem/product/id' as varchar`)
	db.MustExecSQL(`create index o_custid on orders(orddoc) using xmlpattern '//custid' as double`)
	db.MustExecSQL(`create index c_custid on customer(cdoc) using xmlpattern '/customer/id' as double`)
	return db
}

func benchXQ(b *testing.B, db *DB, query string, useIndexes bool) {
	b.Helper()
	db.UseIndexes = useIndexes
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := db.QueryXQuery(query); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSQL(b *testing.B, db *DB, query string, useIndexes bool) {
	b.Helper()
	db.UseIndexes = useIndexes
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := db.ExecSQL(query); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E1: predicate data types (§3.1) ---

const q1 = `for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/@price>100] return $i`

func BenchmarkE1_Q1NumericScan(b *testing.B)    { benchXQ(b, benchDB(b), q1, false) }
func BenchmarkE1_Q1NumericIndexed(b *testing.B) { benchXQ(b, benchDB(b), q1, true) }

const q3 = `for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/@price > "100"] return $i`

func BenchmarkE1_Q3StringScan(b *testing.B)    { benchXQ(b, benchDB(b), q3, false) }
func BenchmarkE1_Q3StringIndexed(b *testing.B) { benchXQ(b, benchDB(b), q3, true) }

// --- prepared statements (plan cache) ---
//
// The pair measures what the plan cache buys: Unprepared re-parses and
// re-analyzes q1 every iteration; Prepared hits the cached plan and goes
// straight to probing and execution. The corpus is deliberately small and
// selective (100 docs, 5% match) so the pair isolates planning cost —
// on large corpora execution dominates and the two converge, which is
// exactly the point of caching only the plan, never the data.

func preparedDB(b *testing.B) *DB {
	b.Helper()
	db := Open()
	db.MustExecSQL(`create table orders (ordid integer, orddoc xml)`)
	spec := workload.DefaultOrders(100)
	spec.Selectivity = 0.05
	for i, doc := range workload.Orders(spec) {
		db.MustExecSQL(fmt.Sprintf(`insert into orders values (%d, '%s')`, i, doc))
	}
	db.MustExecSQL(`create index li_price on orders(orddoc) using xmlpattern '//lineitem/@price' as double`)
	return db
}

func BenchmarkPrepared_Q1IndexedUnprepared(b *testing.B) {
	benchXQ(b, preparedDB(b), q1, true)
}

func BenchmarkPrepared_Q1IndexedPrepared(b *testing.B) {
	db := preparedDB(b)
	db.UseIndexes = true
	stmt, err := db.PrepareXQuery(q1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := stmt.Exec(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E2: SQL/XML query functions (§3.2) ---

const q5 = `SELECT XMLQuery('$order//lineitem[@price > 100]' passing orddoc as "order") FROM orders`
const q8 = `SELECT ordid, orddoc FROM orders WHERE XMLExists('$order//lineitem[@price > 100]' passing orddoc as "order")`
const q9 = `SELECT ordid FROM orders WHERE XMLExists('$order//lineitem/@price > 100' passing orddoc as "order")`
const q11 = `SELECT o.ordid, t.lineitem FROM orders o, XMLTable('$order//lineitem[@price > 100]'
	passing o.orddoc as "order" COLUMNS "lineitem" XML BY REF PATH '.') as t(lineitem)`

func BenchmarkE2_Q5SelectListXMLQuery(b *testing.B) { benchSQL(b, benchDB(b), q5, true) }
func BenchmarkE2_Q8XMLExistsScan(b *testing.B)      { benchSQL(b, benchDB(b), q8, false) }
func BenchmarkE2_Q8XMLExistsIndexed(b *testing.B)   { benchSQL(b, benchDB(b), q8, true) }
func BenchmarkE2_Q9BooleanPitfall(b *testing.B)     { benchSQL(b, benchDB(b), q9, true) }
func BenchmarkE2_Q11XMLTableScan(b *testing.B)      { benchSQL(b, benchDB(b), q11, false) }
func BenchmarkE2_Q11XMLTableIndexed(b *testing.B)   { benchSQL(b, benchDB(b), q11, true) }

// --- E3: joins (§3.3) ---

const q13 = `SELECT p.name FROM products p, orders o
	WHERE XMLExists('$order//lineitem/product[id eq $pid]' passing o.orddoc as "order", p.id as "pid")`
const q16 = `SELECT c.cid FROM orders o, customer c
	WHERE XMLExists('$order/order[custid/xs:double(.) = $cust/customer/id/xs:double(.)]'
	passing o.orddoc as "order", c.cdoc as "cust")`

func BenchmarkE3_Q13XQueryJoin(b *testing.B) { benchSQL(b, benchDB(b), q13, true) }
func BenchmarkE3_Q16XMLJoin(b *testing.B)    { benchSQL(b, benchDB(b), q16, true) }

// --- E4: let-clauses (§3.4) ---

const q17 = `for $doc in db2-fn:xmlcolumn('ORDERS.ORDDOC')
	for $item in $doc//lineitem[@price > 100] return <result>{$item}</result>`
const q18 = `for $doc in db2-fn:xmlcolumn('ORDERS.ORDDOC')
	let $item := $doc//lineitem[@price > 100] return <result>{$item}</result>`
const q22 = `for $ord in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order return $ord/lineitem[@price > 100]`

func BenchmarkE4_Q17ForIndexed(b *testing.B)     { benchXQ(b, benchDB(b), q17, true) }
func BenchmarkE4_Q18LetNoIndex(b *testing.B)     { benchXQ(b, benchDB(b), q18, true) }
func BenchmarkE4_Q22BindOutIndexed(b *testing.B) { benchXQ(b, benchDB(b), q22, true) }

// --- E6: construction (§3.6) ---

const q26 = `let $view := (for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order/lineitem
		return <item>{ $i/@quantity, <pid>{ $i/product/id/data(.) }</pid> }</item>)
	for $j in $view where $j/pid = '17' return $j/@quantity`
const q27 = `for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order/lineitem
	where $i/product/id/data(.) = '17' return $i/@quantity`

func BenchmarkE6_Q26ViewPredicate(b *testing.B)   { benchXQ(b, benchDB(b), q26, true) }
func BenchmarkE6_Q27PushedPredicate(b *testing.B) { benchXQ(b, benchDB(b), q27, true) }

// --- E7: namespaces (§3.7) ---

func nsDB(b *testing.B) *DB {
	b.Helper()
	db := Open()
	db.MustExecSQL(`create table customer (cid integer, cdoc xml)`)
	for i, doc := range workload.Customers(benchDocs, "http://ournamespaces.com/customer", 7) {
		db.MustExecSQL(fmt.Sprintf(`insert into customer values (%d, '%s')`, i, doc))
	}
	db.MustExecSQL(`create index c_nation_ns2 on customer(cdoc) using xmlpattern '//*:nation' as double`)
	return db
}

const q28 = `declare namespace c="http://ournamespaces.com/customer";
	db2-fn:xmlcolumn('CUSTOMER.CDOC')/c:customer[c:nation = 1]`

func BenchmarkE7_Q28NamespacedScan(b *testing.B)    { benchXQ(b, nsDB(b), q28, false) }
func BenchmarkE7_Q28NamespacedIndexed(b *testing.B) { benchXQ(b, nsDB(b), q28, true) }

// --- E8: text nodes (§3.8) ---

func textDB(b *testing.B) *DB {
	b.Helper()
	db := Open()
	db.MustExecSQL(`create table orders (ordid integer, orddoc xml)`)
	for i, doc := range workload.TextPrices(benchDocs, 0.2, 9) {
		db.MustExecSQL(fmt.Sprintf(`insert into orders values (%d, '%s')`, i, doc))
	}
	db.MustExecSQL(`create index price_text on orders(orddoc) using xmlpattern '//price/text()' as varchar`)
	return db
}

const q29 = `for $ord in db2-fn:xmlcolumn("ORDERS.ORDDOC")/order[lineitem/price/text() = "99.50"] return $ord`

func BenchmarkE8_Q29TextScan(b *testing.B)    { benchXQ(b, textDB(b), q29, false) }
func BenchmarkE8_Q29TextIndexed(b *testing.B) { benchXQ(b, textDB(b), q29, true) }

// --- E9: attributes (§3.9) ---

func attrDB(b *testing.B) *DB {
	b.Helper()
	db := Open()
	db.MustExecSQL(`create table orders (ordid integer, orddoc xml)`)
	for i, doc := range workload.Orders(workload.DefaultOrders(benchDocs)) {
		db.MustExecSQL(fmt.Sprintf(`insert into orders values (%d, '%s')`, i, doc))
	}
	db.MustExecSQL(`create index all_attrs on orders(orddoc) using xmlpattern '//@*' as double`)
	return db
}

const q2 = `db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/@* > 100]`

func BenchmarkE9_Q2BroadAttrScan(b *testing.B)    { benchXQ(b, attrDB(b), q2, false) }
func BenchmarkE9_Q2BroadAttrIndexed(b *testing.B) { benchXQ(b, attrDB(b), q2, true) }

// --- E10: between (§3.10) ---

func multiPriceDB(b *testing.B) *DB {
	b.Helper()
	db := Open()
	db.MustExecSQL(`create table orders (ordid integer, orddoc xml)`)
	for i, doc := range workload.MultiPriceOrders(benchDocs, 100, 200, 11) {
		db.MustExecSQL(fmt.Sprintf(`insert into orders values (%d, '%s')`, i, doc))
	}
	db.MustExecSQL(`create index price_el on orders(orddoc) using xmlpattern '//price' as double`)
	return db
}

const q30general = `db2-fn:xmlcolumn('ORDERS.ORDDOC')//lineitem[price > 100 and price < 200]`
const q30between = `db2-fn:xmlcolumn('ORDERS.ORDDOC')//lineitem[price/data()[. > 100 and . < 200]]`

func BenchmarkE10_GeneralTwoProbes(b *testing.B) { benchXQ(b, multiPriceDB(b), q30general, true) }
func BenchmarkE10_BetweenOneProbe(b *testing.B)  { benchXQ(b, multiPriceDB(b), q30between, true) }

// --- E11: tolerant indexes (§2.1) ---

func zipDB(b *testing.B) *DB {
	b.Helper()
	db := Open()
	db.MustExecSQL(`create table addresses (id integer, doc xml)`)
	for i, doc := range workload.PostalAddresses(benchDocs, 0.3, 13) {
		db.MustExecSQL(fmt.Sprintf(`insert into addresses values (%d, '%s')`, i, doc))
	}
	db.MustExecSQL(`create index zip_num on addresses(doc) using xmlpattern '//zip' as double`)
	return db
}

const qZip = `db2-fn:xmlcolumn('ADDRESSES.DOC')//zip/data()[. >= 90000 and . <= 96200]`

func BenchmarkE11_ZipRangeScan(b *testing.B)    { benchXQ(b, zipDB(b), qZip, false) }
func BenchmarkE11_ZipRangeIndexed(b *testing.B) { benchXQ(b, zipDB(b), qZip, true) }

// --- E12: scaling (Definition 1) ---

// benchXQPar is benchXQ with an explicit parallelism setting for the
// document-at-a-time worker pool (1 = serial, results identical at any
// setting).
func benchXQPar(b *testing.B, db *DB, query string, useIndexes bool, par int) {
	b.Helper()
	db.UseIndexes = useIndexes
	opts := QueryOptions{Parallelism: par}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := db.QueryXQueryOpts(query, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE12_Scaling(b *testing.B) {
	for _, size := range []int{500, 1000, 2000, 4000} {
		b.Run(fmt.Sprintf("docs=%d", size), func(b *testing.B) {
			db := Open()
			db.MustExecSQL(`create table orders (ordid integer, orddoc xml)`)
			spec := workload.DefaultOrders(size)
			spec.Selectivity = 0.05
			for i, doc := range workload.Orders(spec) {
				db.MustExecSQL(fmt.Sprintf(`insert into orders values (%d, '%s')`, i, doc))
			}
			db.MustExecSQL(`create index li_price on orders(orddoc) using xmlpattern '//lineitem/@price' as double`)
			for _, mode := range []struct {
				name string
				idx  bool
			}{{"scan", false}, {"indexed", true}} {
				b.Run(mode.name, func(b *testing.B) {
					for _, par := range []int{1, 8} {
						b.Run(fmt.Sprintf("par=%d", par), func(b *testing.B) {
							benchXQPar(b, db, q1, mode.idx, par)
						})
					}
				})
			}
		})
	}
}

// --- probe pipeline: posting lists vs map sets, cold vs cached ---

// synthDocStreams builds doc-id streams shaped like a B+Tree range scan:
// one ascending run of doc ids per indexed value (composite keys sort by
// value first, then doc), with adjacent duplicates where one document
// holds several matching nodes. Deterministic, so both pipeline variants
// see identical input.
func synthDocStreams(streams, runs, idsPerRun int) [][]uint32 {
	state := uint32(2463534242)
	rnd := func(n uint32) uint32 { // xorshift32
		state ^= state << 13
		state ^= state >> 17
		state ^= state << 5
		return state % n
	}
	out := make([][]uint32, streams)
	for s := range out {
		ids := make([]uint32, 0, runs*idsPerRun*2)
		for r := 0; r < runs; r++ {
			doc := rnd(500) // each value's run restarts near the front
			for i := 0; i < idsPerRun; i++ {
				doc += 1 + rnd(3)
				ids = append(ids, doc)
				if rnd(4) == 0 { // same doc matches at a second node
					ids = append(ids, doc)
				}
			}
		}
		out[s] = ids
	}
	return out
}

// CombineMapSets replicates the pre-posting-list pipeline: build one
// map[uint32]bool per probe from its entry stream, then intersect the
// first two and union in the third — the engine's occurrence combine.
func BenchmarkProbePipeline_CombineMapSets(b *testing.B) {
	streams := synthDocStreams(3, 16, 250)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sets := make([]map[uint32]bool, len(streams))
		for s, ids := range streams {
			m := make(map[uint32]bool)
			for _, id := range ids {
				m[id] = true
			}
			sets[s] = m
		}
		inter := map[uint32]bool{}
		for k := range sets[0] {
			if sets[1][k] {
				inter[k] = true
			}
		}
		union := make(map[uint32]bool, len(inter)+len(sets[2]))
		for k := range inter {
			union[k] = true
		}
		for k := range sets[2] {
			union[k] = true
		}
		if len(union) == 0 {
			b.Fatal("empty result")
		}
	}
}

// CombinePostingLists is the same combine over sorted posting lists, the
// way docCollector + DocList run it: append doc ids with adjacent-run
// dedup, one k-way run merge per stream, then galloping intersection and
// merge union with no hashing.
func BenchmarkProbePipeline_CombinePostingLists(b *testing.B) {
	streams := synthDocStreams(3, 16, 250)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lists := make([]postings.List, len(streams))
		for s, ids := range streams {
			docs := make([]uint32, 0, len(ids))
			for _, id := range ids {
				if n := len(docs); n > 0 && docs[n-1] == id {
					continue
				}
				docs = append(docs, id)
			}
			lists[s] = postings.FromRuns(docs)
		}
		union := postings.Union(postings.Intersect(lists[0], lists[1]), lists[2])
		if len(union) == 0 {
			b.Fatal("empty result")
		}
	}
}

// benchXQOpts is benchXQ under explicit QueryOptions.
func benchXQOpts(b *testing.B, db *DB, query string, opts QueryOptions) {
	b.Helper()
	db.UseIndexes = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := db.QueryXQueryOpts(query, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// Cold forces a B+Tree scan per probe on every run; Cached serves both
// probes of the two-probe query from the versioned probe cache.
func BenchmarkProbePipeline_QueryTwoProbesCold(b *testing.B) {
	db := multiPriceDB(b)
	b.ReportAllocs()
	benchXQOpts(b, db, q30general, QueryOptions{NoProbeCache: true})
}

func BenchmarkProbePipeline_QueryTwoProbesCached(b *testing.B) {
	db := multiPriceDB(b)
	db.UseIndexes = true
	if _, _, err := db.QueryXQuery(q30general); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	benchXQOpts(b, db, q30general, QueryOptions{})
}

// --- cold load: per-row inserts vs the streaming ingestion pipeline ---

// coldLoadDir materializes the bench corpus once per benchmark; loading
// is what's measured, so the files are written outside the timer. The
// orders carry more lineitems than the query corpus so the pair measures
// parse + index-build throughput rather than per-file open/close overhead.
func coldLoadDir(b *testing.B, n int) string {
	b.Helper()
	dir := b.TempDir()
	spec := workload.DefaultOrders(n)
	spec.MaxLineitems = 16
	for i, doc := range workload.Orders(spec) {
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("order-%05d.xml", i)), []byte(doc), 0o644); err != nil {
			b.Fatal(err)
		}
	}
	return dir
}

// coldLoadDB is a fresh database with the indexes already declared, so
// both loaders pay full index maintenance for every document.
func coldLoadDB() *DB {
	db := Open()
	db.MustExecSQL(`create table orders (id integer, doc xml)`)
	db.MustExecSQL(`create index li_price on orders(doc) using xmlpattern '//lineitem/@price' as double`)
	db.MustExecSQL(`create index prod_id on orders(doc) using xmlpattern '//lineitem/product/id' as varchar`)
	return db
}

const coldLoadDocs = 400

// PerRowLoader is the pre-pipeline path: read each file whole, parse it
// from a string, insert row by row with incremental index maintenance.
func BenchmarkColdLoad_PerRowLoader(b *testing.B) {
	dir := coldLoadDir(b, coldLoadDocs)
	entries, err := os.ReadDir(dir)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db := coldLoadDB()
		for j, ent := range entries {
			data, err := os.ReadFile(filepath.Join(dir, ent.Name()))
			if err != nil {
				b.Fatal(err)
			}
			if err := db.InsertValidated("orders", int64(j), string(data), nil); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// StreamingPipeline pushes the same corpus through LoadXMLDir: SAX-style
// streaming parse, single-pass extraction, sorted-run merge into
// bulk-built B+Trees, one atomic append.
func BenchmarkColdLoad_StreamingPipeline(b *testing.B) {
	dir := coldLoadDir(b, coldLoadDocs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db := coldLoadDB()
		if n, err := db.LoadXMLDir("orders", dir); err != nil || n != coldLoadDocs {
			b.Fatalf("load: %d, %v", n, err)
		}
	}
}

// --- path synopsis: short-circuit vs full probe ---

// The query's pattern is index-eligible (li_price covers it by
// containment) but matches no stored path — no order carries an
// <archived> wrapper — so the synopsis can prove the probe empty
// without touching the B+Tree. SynopsisOff runs the probe for real
// (NoSynopsis baseline, and NoProbeCache so every iteration pays the
// scan); SynopsisOn answers from the path summary. Results are
// identical (empty) either way.
const qSynSkip = `for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')//archived/lineitem[@price > 100] return $i`

func BenchmarkSynopsisShortCircuit(b *testing.B) {
	db := benchDB(b)
	db.UseIndexes = true
	stmt, err := db.PrepareXQuery(qSynSkip)
	if err != nil {
		b.Fatal(err)
	}
	// Prepared, so parse + analysis drop out and the pair isolates what
	// the short-circuit saves: the per-execution index range scan.
	run := func(b *testing.B, opts QueryOptions) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := stmt.ExecOpts(opts); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("SynopsisOff", func(b *testing.B) {
		run(b, QueryOptions{NoSynopsis: true, NoProbeCache: true})
	})
	b.Run("SynopsisOn", func(b *testing.B) {
		run(b, QueryOptions{NoProbeCache: true})
	})
}

// --- node-level postings: index-only answers and seeded re-evaluation ---

// Both variants pay the full range scan every iteration (NoProbeCache);
// the pair isolates what node granularity saves. DocGranular runs the
// probe as a document pre-filter and then evaluates the count over the
// surviving documents; NodeGranular answers fn:count straight from the
// decoded node references without touching a document.
func BenchmarkIndexOnly_DocGranular(b *testing.B) {
	benchIndexOnly(b, QueryOptions{NoIndexOnly: true, NoProbeCache: true})
}

func BenchmarkIndexOnly_NodeGranular(b *testing.B) {
	benchIndexOnly(b, QueryOptions{NoProbeCache: true})
}

func benchIndexOnly(b *testing.B, opts QueryOptions) {
	b.Helper()
	db := benchDB(b)
	db.UseIndexes = true
	stmt, err := db.PrepareXQuery(`fn:count(db2-fn:xmlcolumn('ORDERS.ORDDOC')//lineitem/@price[. > 100])`)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := stmt.ExecOpts(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// FullWalk pre-filters documents and then re-evaluates the predicate
// over every candidate node in each survivor; Seeded decodes the matched
// ordinals during the same probe and prunes the operand path to the hit
// nodes and their ancestors. The corpus is built so predicate
// re-evaluation dominates — wide documents (80 lineitems) where only 2
// match — which is exactly the case document granularity cannot help:
// every document survives the pre-filter.
func BenchmarkSeededEval_FullWalk(b *testing.B) {
	benchSeededEval(b, QueryOptions{NoNodeSeeds: true, NoProbeCache: true})
}

func BenchmarkSeededEval_Seeded(b *testing.B) {
	benchSeededEval(b, QueryOptions{NoProbeCache: true})
}

func benchSeededEval(b *testing.B, opts QueryOptions) {
	b.Helper()
	db := Open()
	db.MustExecSQL(`create table wide (ordid integer, doc xml)`)
	var sb strings.Builder
	for i := 0; i < 150; i++ {
		sb.Reset()
		fmt.Fprintf(&sb, `<order id="%d">`, i)
		for j := 0; j < 80; j++ {
			fmt.Fprintf(&sb, `<lineitem price="%d"/>`, j)
		}
		sb.WriteString(`</order>`)
		db.MustExecSQL(fmt.Sprintf(`insert into wide values (%d, '%s')`, i, sb.String()))
	}
	db.MustExecSQL(`create index w_price on wide(doc) using xmlpattern '//lineitem/@price' as double`)
	db.UseIndexes = true
	stmt, err := db.PrepareXQuery(`for $i in db2-fn:xmlcolumn('WIDE.DOC')//order[lineitem/@price > 77] return $i/@id`)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := stmt.ExecOpts(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate micro-benchmarks ---

func BenchmarkSubstrate_ParseOrder(b *testing.B) {
	doc := workload.Orders(workload.DefaultOrders(1))[0]
	db := Open()
	db.MustExecSQL(`create table t (i integer, d xml)`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := db.ExecSQL(fmt.Sprintf(`insert into t values (%d, '%s')`, i, doc)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubstrate_IndexProbe(b *testing.B) {
	db := benchDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := db.QueryXQuery(`db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/@price = 150.5]`); err != nil {
			b.Fatal(err)
		}
	}
}
