# Tier-1 verification stays `go build ./... && go test ./...` (make test).
# The race + vet pass the concurrency guarantees depend on is one command
# away: `make race` (or `make verify` for everything).

GO ?= go

.PHONY: build test vet race verify fuzz

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

verify: test vet race

# Short fuzz burns over the parser entry points; failures become seed
# corpus regressions under testdata/fuzz/.
FUZZTIME ?= 15s

fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzParseDoc -fuzztime=$(FUZZTIME) ./internal/xmlparse
	$(GO) test -run='^$$' -fuzz=FuzzXQueryParse -fuzztime=$(FUZZTIME) ./internal/xquery
