# Tier-1 verification stays `go build ./... && go test ./...` (make test).
# The race + vet pass the concurrency guarantees depend on is one command
# away: `make race` (or `make verify` for everything).

GO ?= go

.PHONY: build test vet race fmt-check verify bench bench-gate fuzz loadtest

build:
	$(GO) build ./...

# TESTFLAGS threads extra `go test` flags through (CI passes
# -coverprofile here so the tier-1 run doubles as the coverage run).
TESTFLAGS ?=

test: build
	$(GO) test $(TESTFLAGS) ./...

# vet runs the stock toolchain vet plus xqvet, the project's own
# analyzer suite (guard discipline, posting-list doc sets, atomics,
# lock escapes, map-order determinism, exhaustive stats merging,
# cache-key completeness, lock-order acyclicity, knob-matrix coverage).
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/xqvet ./...

race:
	$(GO) test -race ./...

# fmt-check fails (and lists the offenders) when any file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

verify: fmt-check test vet race bench

# Full-suite benchmark run emitting BENCH_PR2.json: every E1-E12 pair
# plus the prepared-statement and parallelism pairs, with the paper's
# scan-vs-indexed (and unprepared-vs-prepared, serial-vs-parallel)
# speedup ratios computed by cmd/benchjson. The default BENCHTIME of 1x
# is the smoke setting `make verify` uses; raise it for stable numbers:
#
#	make bench BENCHTIME=2s
BENCHTIME ?= 1x
BENCHOUT ?= BENCH_PR2.json

bench: build
	$(GO) test -run='^$$' -bench=. -benchmem -benchtime=$(BENCHTIME) . > bench.out
	$(GO) run ./cmd/benchjson -o $(BENCHOUT) bench.out

# bench-gate: the small fixed subset CI *gates* on (the bench-gate job),
# unlike the full non-gating sweep above. Three runs of four stable pairs
# — the synopsis short-circuit, the probe-pipeline combine, the
# index-only answer, and the seeded re-evaluation — are collapsed to a
# per-benchmark median by `benchjson -agg median`; the CI job then diffs
# BENCH_GATE.json against the previous run's artifact with
# `benchdiff -fail-over 25`.
GATEBENCH ?= SynopsisShortCircuit|ProbePipeline_Combine|IndexOnly_|SeededEval_
GATECOUNT ?= 3
GATETIME ?= 200x

bench-gate: build
	$(GO) test -run='^$$' -bench='$(GATEBENCH)' -benchmem -benchtime=$(GATETIME) -count=$(GATECOUNT) . > bench-gate.out
	$(GO) run ./cmd/benchjson -agg median -o BENCH_GATE.json bench-gate.out

# End-to-end load test: boot xqserve under the race detector with a
# demo corpus and a deliberately tight admission budget, hammer it with
# cmd/serverload, then SIGTERM it to exercise the drain path. Leaves the
# latency/shed-rate report in loadtest.json (+ loadtest.out, and the
# server's own log in loadtest-server.log). Fails on transport errors
# (a request that never resolved — the one outcome admission control
# exists to prevent), on a race-detector report, or on a drain that
# never ran; latency and shed-rate numbers themselves are a trend, not
# a gate.
LOADC ?= 48
LOADN ?= 2000
LOADADDR ?= :18080

loadtest:
	$(GO) build -race -o bin/xqserve ./cmd/xqserve
	$(GO) build -o bin/serverload ./cmd/serverload
	@set -e; \
	./bin/xqserve -addr $(LOADADDR) -demo 400 -max-inflight 2 -max-queue 8 \
	  -max-wait 100ms -retry-after 250ms >loadtest-server.log 2>&1 & pid=$$!; \
	trap 'kill -TERM '"$$pid"' 2>/dev/null || true' EXIT; \
	./bin/serverload -addr http://localhost$(LOADADDR) -c $(LOADC) -n $(LOADN) \
	  -timeout-ms 500 -json loadtest.json >loadtest.out; \
	cat loadtest.out; \
	kill -TERM $$pid; wait $$pid; \
	grep -q 'drain:' loadtest-server.log

# Short fuzz burns over the parser entry points; failures become seed
# corpus regressions under testdata/fuzz/.
FUZZTIME ?= 15s

fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzParseDoc -fuzztime=$(FUZZTIME) ./internal/xmlparse
	$(GO) test -run='^$$' -fuzz=FuzzXQueryParse -fuzztime=$(FUZZTIME) ./internal/xquery
