package xqdb

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

const preparedQ1 = `db2-fn:xmlcolumn("ORDERS.ORDDOC")//order[lineitem/@price > 20]`

func TestPreparedStatementFlow(t *testing.T) {
	db := loadedDB(t, 40)

	stmt, err := db.PrepareXQuery(preparedQ1)
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Text() != preparedQ1 {
		t.Fatalf("Text() = %q", stmt.Text())
	}
	plain, _, err := db.QueryXQuery(preparedQ1)
	if err != nil {
		t.Fatal(err)
	}
	prepped, stats, err := stmt.Exec()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(prepped.Rows()) != fmt.Sprint(plain.Rows()) {
		t.Fatal("prepared execution returned different rows than unprepared")
	}
	if len(stats.IndexesUsed) == 0 {
		t.Fatalf("prepared execution skipped the index: %+v", stats)
	}

	sqlStmt, err := db.Prepare(`select ordid from orders where xmlexists('$d//lineitem[@price > 20]' passing orddoc as "d")`)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := sqlStmt.Exec()
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 {
		t.Fatal("prepared SQL returned no rows")
	}

	if _, err := db.PrepareXQuery(`for $x in`); err == nil {
		t.Fatal("PrepareXQuery must surface parse errors")
	}
	if _, err := db.Prepare(`SELEC nope`); err == nil {
		t.Fatal("Prepare must surface parse errors")
	}
}

// The §3.1 pitfall as a public-API cache fixture: with only the varchar
// index the numeric predicate is ineligible; CREATE INDEX mid-session must
// invalidate the prepared plan and flip eligibility on the next Exec.
func TestPreparedPlanSeesMidSessionDDL(t *testing.T) {
	db := Open()
	db.MustExecSQL(`create table orders (ordid integer, orddoc xml)`)
	for i := 0; i < 10; i++ {
		db.MustExecSQL(fmt.Sprintf(
			`insert into orders values (%d, '<order><lineitem price="%d"/></order>')`, i, 90+i*5))
	}
	db.MustExecSQL(`create index li_price_str on orders(orddoc) using xmlpattern '//lineitem/@price' as varchar`)

	stmt, err := db.PrepareXQuery(preparedQ1)
	if err != nil {
		t.Fatal(err)
	}
	res1, stats, err := stmt.Exec()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.IndexesUsed) != 0 {
		t.Fatalf("varchar index must not serve the numeric predicate: %v", stats.IndexesUsed)
	}

	db.MustExecSQL(`create index li_price on orders(orddoc) using xmlpattern '//lineitem/@price' as double`)
	res2, stats, err := stmt.Exec()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.IndexesUsed) == 0 {
		t.Fatal("prepared plan did not replan after CREATE INDEX")
	}
	if fmt.Sprint(res2.Rows()) != fmt.Sprint(res1.Rows()) {
		t.Fatal("eligibility flip changed the result")
	}

	db.MustExecSQL(`drop index li_price`)
	_, stats, err = stmt.Exec()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.IndexesUsed) != 0 {
		t.Fatalf("prepared plan still probing a dropped index: %v", stats.IndexesUsed)
	}
}

// Prepared executions racing DDL and fresh Prepare calls must be safe
// under -race and must never return wrong results — at worst they replan.
func TestPreparedDDLStress(t *testing.T) {
	db := loadedDB(t, 48)
	const countQ = `select ordid from orders where xmlexists('$d//lineitem[@price > 20]' passing orddoc as "d")`
	want := db.MustExecSQL(countQ).Len()

	stmt, err := db.PrepareXQuery(preparedQ1)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// DDL writer: cycle the double index so prepared plans keep going
	// stale mid-flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < 25; i++ {
			db.MustExecSQL(`drop index li_price`)
			db.MustExecSQL(`create index li_price on orders(orddoc) using xmlpattern '//lineitem/@price' as double`)
		}
	}()

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					if i > 0 {
						return
					}
				default:
				}
				var err error
				switch (r + i) % 3 {
				case 0:
					_, _, err = stmt.Exec()
				case 1:
					_, err = db.PrepareXQuery(preparedQ1)
				default:
					var res *Result
					res, _, err = stmt.ExecOpts(QueryOptions{Parallelism: 4})
					if err == nil && len(res.Rows()) == 0 {
						err = fmt.Errorf("prepared query lost its result mid-DDL")
					}
				}
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(r)
	}
	wg.Wait()

	if got := db.MustExecSQL(countQ).Len(); got != want {
		t.Fatalf("stress changed the data: count %d -> %d", want, got)
	}
}

// The Parallelism knob must never change results: par=8 output is
// byte-identical to par=1 for XQuery and SQL alike, indexed or not.
func TestParallelismKnobDeterminism(t *testing.T) {
	db := loadedDB(t, 64)
	xqueries := []string{
		preparedQ1,
		`for $d in db2-fn:xmlcolumn("ORDERS.ORDDOC") return <n>{count($d//lineitem)}</n>`,
		`db2-fn:xmlcolumn("ORDERS.ORDDOC")//product/id`,
	}
	sqls := []string{
		`select ordid from orders where xmlexists('$d//lineitem[@price > 30]' passing orddoc as "d")`,
		`select ordid, xmlquery('$d//product/id' passing orddoc as "d") from orders`,
		`select ordid from orders where xmlexists('$d//lineitem' passing orddoc as "d") order by ordid desc`,
	}
	for _, useIdx := range []bool{false, true} {
		db.UseIndexes = useIdx
		for _, q := range xqueries {
			serial, _, err := db.QueryXQueryOpts(q, QueryOptions{Parallelism: 1})
			if err != nil {
				t.Fatalf("%s: %v", q, err)
			}
			par, _, err := db.QueryXQueryOpts(q, QueryOptions{Parallelism: 8})
			if err != nil {
				t.Fatalf("%s: %v", q, err)
			}
			if fmt.Sprint(serial.Rows()) != fmt.Sprint(par.Rows()) {
				t.Fatalf("parallel XQuery differs from serial (useIndexes=%v): %s", useIdx, q)
			}
		}
		for _, q := range sqls {
			serial, _, err := db.ExecSQLOpts(q, QueryOptions{Parallelism: 1})
			if err != nil {
				t.Fatalf("%s: %v", q, err)
			}
			par, pstats, err := db.ExecSQLOpts(q, QueryOptions{Parallelism: 8})
			if err != nil {
				t.Fatalf("%s: %v", q, err)
			}
			if fmt.Sprint(serial.Rows()) != fmt.Sprint(par.Rows()) {
				t.Fatalf("parallel SQL differs from serial (useIndexes=%v): %s", useIdx, q)
			}
			if !useIdx && pstats.ParallelShards < 2 {
				t.Fatalf("SQL scan did not shard (got %d shards): %s", pstats.ParallelShards, q)
			}
		}
	}
}

// Cancellation must reach the parallel workers through the shared guard.
func TestParallelCancellation(t *testing.T) {
	db := loadedDB(t, 64)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := db.QueryXQueryOpts(heavyQuery, QueryOptions{Context: ctx, Parallelism: 8})
	var qe *QueryError
	if !errors.As(err, &qe) || qe.Kind != ErrCanceled {
		t.Fatalf("parallel XQuery: got %v, want canceled QueryError", err)
	}
	_, _, err = db.ExecSQLOpts(
		`select ordid from orders where xmlexists('$d//deepest' passing orddoc as "d")`,
		QueryOptions{Context: ctx, Parallelism: 8})
	if !errors.As(err, &qe) || qe.Kind != ErrCanceled {
		t.Fatalf("parallel SQL: got %v, want canceled QueryError", err)
	}
}
